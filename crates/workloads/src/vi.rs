//! The vi 6.1 save sequence (paper Figure 1 and Section 2.1).
//!
//! When vi (running as root) saves a file owned by a normal user it:
//!
//! 1. renames the original file to a backup name;
//! 2. `creat`s a new file under the original name — **owned by root**;
//! 3. writes the whole edit buffer to it;
//! 4. closes it;
//! 5. `chown`s it back to the original user.
//!
//! Steps 2–5 form the `<open, chown>` vulnerability window, whose length is
//! dominated by the file write — which is why Figure 6/7's results depend on
//! file size.

use std::sync::Arc;
use tocttou_os::ids::{Fd, Gid, Uid};
use tocttou_os::process::{Action, LogicCtx, ProcessLogic, SyscallRequest, SyscallResult};
use tocttou_sim::dist::DurationDist;
use tocttou_sim::rng::SimRng;
use tocttou_sim::time::SimDuration;

/// Configuration for a [`ViSave`] victim.
///
/// Durations are machine-absolute microsecond values (they model user-space
/// computation of the victim binary on the experiment machine and are not
/// rescaled by the simulator).
#[derive(Debug, Clone)]
pub struct ViConfig {
    /// The file being saved (the paper's `wfname`).
    pub wfname: Arc<str>,
    /// The backup name the original is renamed to.
    pub backup: Arc<str>,
    /// Size of the edit buffer written out, in bytes.
    pub file_size: u64,
    /// Write-loop granularity in bytes (vi writes through a buffer).
    pub chunk: u64,
    /// The original owner, restored by the final chown.
    pub owner: (Uid, Gid),
    /// "Editing" time before the save starts. For uniprocessor experiments
    /// this is uniform over a full time slice so the save begins at a
    /// uniformly random slice phase.
    pub prologue: DurationDist,
    /// User-space computation between consecutive save syscalls.
    pub inter_call_gap: SimDuration,
    /// Computation between `close` and `chown` (the tail of the window).
    pub post_close_gap: SimDuration,
    /// Gaussian jitter (stdev, µs) applied to each gap sample.
    pub gap_jitter_us: f64,
    /// Slow-storage model (the paper's Section 1 enhancement: "using slow
    /// storage devices (e.g. floppy disks)"): after every chunk write, the
    /// victim blocks on device I/O for this long. `None` = page-cache-only
    /// writes, the paper's main experiments.
    pub write_block: Option<SimDuration>,
}

impl ViConfig {
    /// A configuration with the calibrated defaults (gaps matched to the
    /// paper's Table 1: a 1-byte save yields L ≈ 62 µs on the SMP profile).
    pub fn new(wfname: impl Into<Arc<str>>, backup: impl Into<Arc<str>>, file_size: u64) -> Self {
        ViConfig {
            wfname: wfname.into(),
            backup: backup.into(),
            file_size,
            chunk: 64 * 1024,
            owner: (Uid(1000), Gid(1000)),
            prologue: DurationDist::uniform_us(0.0, 200.0),
            inter_call_gap: SimDuration::from_micros(10),
            post_close_gap: SimDuration::from_micros(76),
            gap_jitter_us: 2.0,
            write_block: None,
        }
    }

    /// Enables the slow-storage model with the given per-chunk I/O stall.
    pub fn on_slow_storage(mut self, block: SimDuration) -> Self {
        self.write_block = Some(block);
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ViState {
    Prologue,
    RenameToBackup,
    GapBeforeCreate,
    Create,
    Write,
    IoStall,
    GapBeforeClose,
    Close,
    GapBeforeChown,
    Chown,
    Done,
}

/// The vi save-sequence victim program.
#[derive(Debug)]
pub struct ViSave {
    cfg: ViConfig,
    state: ViState,
    written: u64,
    fd: Option<Fd>,
    rng: SimRng,
}

impl ViSave {
    /// Creates the victim; `seed` randomizes the editing prologue and gap
    /// jitter.
    pub fn new(cfg: ViConfig, seed: u64) -> Self {
        ViSave {
            cfg,
            state: ViState::Prologue,
            written: 0,
            fd: None,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    fn gap(&mut self, base: SimDuration) -> SimDuration {
        if self.cfg.gap_jitter_us <= 0.0 {
            return base;
        }
        let jittered = base.as_micros_f64()
            + self.cfg.gap_jitter_us * tocttou_sim::dist::sample_standard_normal(&mut self.rng);
        SimDuration::from_micros_f64(jittered)
    }
}

impl ProcessLogic for ViSave {
    #[allow(clippy::only_used_in_recursion)]
    fn next_action(&mut self, _ctx: &LogicCtx, last: Option<&SyscallResult>) -> Action {
        match self.state {
            ViState::Prologue => {
                self.state = ViState::RenameToBackup;
                Action::Compute(self.cfg.prologue.sample(&mut self.rng))
            }
            ViState::RenameToBackup => {
                self.state = ViState::GapBeforeCreate;
                Action::Syscall(SyscallRequest::Rename {
                    from: self.cfg.wfname.clone(),
                    to: self.cfg.backup.clone(),
                })
            }
            ViState::GapBeforeCreate => {
                self.state = ViState::Create;
                let g = self.gap(self.cfg.inter_call_gap);
                Action::Compute(g)
            }
            ViState::Create => {
                self.state = ViState::Write;
                Action::Syscall(SyscallRequest::OpenCreate {
                    path: self.cfg.wfname.clone(),
                })
            }
            ViState::Write => {
                if self.fd.is_none() {
                    self.fd = last.and_then(|r| r.fd());
                    debug_assert!(self.fd.is_some(), "creat must return an fd");
                }
                if self.written >= self.cfg.file_size {
                    self.state = ViState::GapBeforeClose;
                    return self.next_action(_ctx, None);
                }
                let remaining = self.cfg.file_size - self.written;
                let bytes = remaining.min(self.cfg.chunk.max(1));
                self.written += bytes;
                if self.cfg.write_block.is_some() {
                    self.state = ViState::IoStall;
                }
                Action::Syscall(SyscallRequest::Write {
                    fd: self.fd.expect("fd present while writing"),
                    bytes,
                })
            }
            ViState::IoStall => {
                self.state = ViState::Write;
                Action::Syscall(SyscallRequest::Sleep {
                    duration: self.cfg.write_block.expect("stall only when configured"),
                })
            }
            ViState::GapBeforeClose => {
                self.state = ViState::Close;
                let g = self.gap(self.cfg.inter_call_gap);
                Action::Compute(g)
            }
            ViState::Close => {
                self.state = ViState::GapBeforeChown;
                Action::Syscall(SyscallRequest::Close {
                    fd: self.fd.expect("fd open"),
                })
            }
            ViState::GapBeforeChown => {
                self.state = ViState::Chown;
                let g = self.gap(self.cfg.post_close_gap);
                Action::Compute(g)
            }
            ViState::Chown => {
                self.state = ViState::Done;
                Action::Syscall(SyscallRequest::Chown {
                    path: self.cfg.wfname.clone(),
                    uid: self.cfg.owner.0,
                    gid: self.cfg.owner.1,
                })
            }
            ViState::Done => Action::Exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tocttou_os::machine::MachineSpec;
    use tocttou_os::prelude::*;
    use tocttou_sim::time::SimTime;

    fn setup_kernel() -> Kernel {
        let mut k = Kernel::new(MachineSpec::smp_xeon().quiet(), 1);
        let root = InodeMeta {
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            mode: 0o755,
        };
        let user = InodeMeta {
            uid: Uid(1000),
            gid: Gid(1000),
            mode: 0o644,
        };
        k.vfs_mut().mkdir("/home", root).unwrap();
        k.vfs_mut().mkdir("/home/user", user).unwrap();
        let ino = k.vfs_mut().create_file("/home/user/doc.txt", user).unwrap();
        k.vfs_mut().append(ino, 4096).unwrap();
        k
    }

    #[test]
    fn save_sequence_completes_with_correct_final_state() {
        let mut k = setup_kernel();
        let cfg = ViConfig::new("/home/user/doc.txt", "/home/user/doc.txt~", 100 * 1024);
        let pid = k.spawn(
            "vi",
            Uid::ROOT,
            Gid::ROOT,
            true,
            Box::new(ViSave::new(cfg, 9)),
        );
        let outcome = k.run_until_exit(pid, SimTime::from_secs(2));
        assert_eq!(outcome, RunOutcome::StopConditionMet);
        // Backup holds the old content; new file has the new size and the
        // user's ownership restored.
        let backup = k.vfs().stat("/home/user/doc.txt~").unwrap();
        assert_eq!(backup.size, 4096);
        let saved = k.vfs().stat("/home/user/doc.txt").unwrap();
        assert_eq!(saved.size, 100 * 1024);
        assert_eq!(saved.uid, Uid(1000), "ownership restored");
        k.vfs().check_invariants().unwrap();
    }

    #[test]
    fn window_exists_file_owned_by_root_between_creat_and_chown() {
        let mut k = setup_kernel();
        let cfg = ViConfig::new("/home/user/doc.txt", "/home/user/doc.txt~", 1024 * 1024);
        let pid = k.spawn(
            "vi",
            Uid::ROOT,
            Gid::ROOT,
            true,
            Box::new(ViSave::new(cfg, 3)),
        );
        // Run until mid-write (a 1 MB write at SMP speed takes ~17 ms; stop
        // at 5 ms, well inside the window).
        k.run_until(
            |k| k.now() >= SimTime::from_millis(5),
            SimTime::from_secs(2),
        );
        let st = k.vfs().stat("/home/user/doc.txt").unwrap();
        assert_eq!(st.uid, Uid::ROOT, "mid-window the file belongs to root");
        // Finish: ownership restored.
        k.run_until_exit(pid, SimTime::from_secs(2));
        assert_eq!(k.vfs().stat("/home/user/doc.txt").unwrap().uid, Uid(1000));
    }

    #[test]
    fn window_length_scales_with_file_size() {
        let window_of = |size: u64| {
            let mut k = setup_kernel();
            let mut cfg = ViConfig::new("/home/user/doc.txt", "/home/user/doc.txt~", size);
            cfg.prologue = DurationDist::const_us(0.0);
            let pid = k.spawn(
                "vi",
                Uid::ROOT,
                Gid::ROOT,
                true,
                Box::new(ViSave::new(cfg, 5)),
            );
            k.run_until_exit(pid, SimTime::from_secs(5));
            // Window = creat commit .. chown enter, from the trace.
            let mut creat_commit = None;
            let mut chown_enter = None;
            for r in k.trace().iter() {
                match &r.event {
                    OsEvent::Commit {
                        call: SyscallName::OpenCreate,
                        ..
                    } => creat_commit = Some(r.at),
                    OsEvent::SyscallEnter {
                        call: SyscallName::Chown,
                        ..
                    } => chown_enter = Some(r.at),
                    _ => {}
                }
            }
            (chown_enter.unwrap() - creat_commit.unwrap()).as_micros_f64()
        };
        let w1 = window_of(1);
        let w100k = window_of(100 * 1024);
        let w1m = window_of(1024 * 1024);
        // 1-byte window ≈ the calibrated ~97 µs baseline (Table 1's L ≈ 62
        // plus the detection/attack allowance).
        assert!((80.0..130.0).contains(&w1), "1-byte window {w1}");
        // 17 µs/KB at SMP speed.
        assert!((1_500.0..2_100.0).contains(&w100k), "100 KB window {w100k}");
        assert!((16_000.0..19_500.0).contains(&w1m), "1 MB window {w1m}");
    }
}

#[cfg(test)]
mod slow_storage_tests {
    use super::*;
    use crate::attacker::{AttackerConfig, AttackerV1};
    use tocttou_core::stats::SuccessCounter;
    use tocttou_os::machine::MachineSpec;
    use tocttou_os::prelude::*;
    use tocttou_sim::time::SimTime;

    /// Section 1's classic victim-slowing trick: on slow storage the victim
    /// blocks mid-window, so even the uniprocessor attacker wins almost
    /// every round (P(suspended) → 1).
    #[test]
    fn slow_storage_makes_uniprocessor_attack_reliable() {
        let run_round = |seed: u64, slow: bool| -> bool {
            let mut k = Kernel::new(MachineSpec::uniprocessor().quiet(), seed);
            let root = InodeMeta {
                uid: Uid::ROOT,
                gid: Gid::ROOT,
                mode: 0o755,
            };
            let user = InodeMeta {
                uid: Uid(1000),
                gid: Gid(1000),
                mode: 0o755,
            };
            k.vfs_mut().mkdir("/etc", root).unwrap();
            k.vfs_mut().create_file("/etc/passwd", root).unwrap();
            k.vfs_mut().mkdir("/home", root).unwrap();
            k.vfs_mut().mkdir("/home/user", user).unwrap();
            k.vfs_mut().create_file("/home/user/doc.txt", user).unwrap();
            let mut cfg = ViConfig::new("/home/user/doc.txt", "/home/user/doc.txt~", 128 * 1024);
            cfg.chunk = 16 * 1024;
            if slow {
                cfg = cfg.on_slow_storage(SimDuration::from_millis(2));
            }
            let vpid = k.spawn(
                "vi",
                Uid::ROOT,
                Gid::ROOT,
                true,
                Box::new(ViSave::new(cfg, seed)),
            );
            let atk = AttackerConfig::vi_smp("/home/user/doc.txt", "/etc/passwd");
            k.spawn(
                "attacker",
                Uid(1000),
                Gid(1000),
                false,
                Box::new(AttackerV1::new(atk, seed ^ 0xAA)),
            );
            k.run_until_exit(vpid, SimTime::from_secs(2));
            k.vfs().stat("/etc/passwd").unwrap().uid == Uid(1000)
        };
        let mut fast = SuccessCounter::new();
        let mut slow = SuccessCounter::new();
        for seed in 0..25 {
            fast.record(run_round(seed, false));
            slow.record(run_round(seed, true));
        }
        assert!(slow.rate() > 0.9, "slow storage: {slow}");
        assert!(fast.rate() < 0.3, "page-cache writes: {fast}");
    }
}
