//! The gedit 2.8.3 save sequence (paper Figure 3 and Section 2.2).
//!
//! When gedit (running as root) saves a file owned by a normal user it:
//!
//! 1. writes the buffer to a temporary scratch file (created by root);
//! 2. backs up the original (rename to `backup`);
//! 3. `rename`s the scratch file onto the original name;
//! 4. `chmod`s the file back to the original mode;
//! 5. `chown`s it back to the original user.
//!
//! The `<rename, chown>` window (steps 3–5) does **not** contain the file
//! write, so it is tens of microseconds long regardless of file size —
//! unattackable on a uniprocessor (Section 4.2), yet up to 83 % attackable
//! on the SMP (Section 6.1). The decisive parameter is the computation gap
//! between `rename` and `chmod`: 43 µs on the SMP testbed, 3 µs on the
//! multi-core (Section 6.2.1).

use std::sync::Arc;
use tocttou_os::ids::{Fd, Gid, Uid};
use tocttou_os::process::{Action, LogicCtx, ProcessLogic, SyscallRequest, SyscallResult};
use tocttou_sim::dist::DurationDist;
use tocttou_sim::rng::SimRng;
use tocttou_sim::time::SimDuration;

/// Configuration for a [`GeditSave`] victim.
#[derive(Debug, Clone)]
pub struct GeditConfig {
    /// The document being saved (the paper's `real_filename`).
    pub real: Arc<str>,
    /// The scratch file (the paper's `temp_filename`).
    pub temp: Arc<str>,
    /// The backup name for the original.
    pub backup: Arc<str>,
    /// Size of the buffer written, in bytes.
    pub file_size: u64,
    /// Write-loop granularity in bytes.
    pub chunk: u64,
    /// The original owner, restored by the final chown.
    pub owner: (Uid, Gid),
    /// Original mode, restored by chmod.
    pub mode: u32,
    /// "Editing" time before the save starts.
    pub prologue: DurationDist,
    /// User-space computation between rename and chmod — the paper's key
    /// machine-dependent gap (43 µs SMP, 3 µs multi-core).
    pub rename_chmod_gap: SimDuration,
    /// Computation between chmod and chown.
    pub chmod_chown_gap: SimDuration,
    /// Computation between the other save syscalls.
    pub inter_call_gap: SimDuration,
    /// Gaussian jitter (stdev, µs) applied to each gap sample.
    pub gap_jitter_us: f64,
}

impl GeditConfig {
    /// A configuration with SMP-calibrated defaults (43 µs rename→chmod gap).
    pub fn new(
        real: impl Into<Arc<str>>,
        temp: impl Into<Arc<str>>,
        backup: impl Into<Arc<str>>,
        file_size: u64,
    ) -> Self {
        GeditConfig {
            real: real.into(),
            temp: temp.into(),
            backup: backup.into(),
            file_size,
            chunk: 64 * 1024,
            owner: (Uid(1000), Gid(1000)),
            mode: 0o644,
            prologue: DurationDist::uniform_us(0.0, 200.0),
            rename_chmod_gap: SimDuration::from_micros(43),
            chmod_chown_gap: SimDuration::from_micros(1),
            inter_call_gap: SimDuration::from_micros(10),
            gap_jitter_us: 1.0,
        }
    }

    /// Switches to the multi-core timing (3 µs rename→chmod gap).
    pub fn with_multicore_gaps(mut self) -> Self {
        self.rename_chmod_gap = SimDuration::from_micros(3);
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GeditState {
    Prologue,
    CreateTemp,
    Write,
    GapBeforeClose,
    Close,
    GapBeforeBackup,
    BackupOriginal,
    GapBeforeRename,
    RenameIntoPlace,
    GapBeforeChmod,
    Chmod,
    GapBeforeChown,
    Chown,
    Done,
}

/// The gedit save-sequence victim program.
#[derive(Debug)]
pub struct GeditSave {
    cfg: GeditConfig,
    state: GeditState,
    written: u64,
    fd: Option<Fd>,
    rng: SimRng,
}

impl GeditSave {
    /// Creates the victim; `seed` randomizes the editing prologue and gap
    /// jitter.
    pub fn new(cfg: GeditConfig, seed: u64) -> Self {
        GeditSave {
            cfg,
            state: GeditState::Prologue,
            written: 0,
            fd: None,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    fn gap(&mut self, base: SimDuration) -> SimDuration {
        if self.cfg.gap_jitter_us <= 0.0 {
            return base;
        }
        let jittered = base.as_micros_f64()
            + self.cfg.gap_jitter_us * tocttou_sim::dist::sample_standard_normal(&mut self.rng);
        SimDuration::from_micros_f64(jittered)
    }
}

impl ProcessLogic for GeditSave {
    #[allow(clippy::only_used_in_recursion)]
    fn next_action(&mut self, ctx: &LogicCtx, last: Option<&SyscallResult>) -> Action {
        match self.state {
            GeditState::Prologue => {
                self.state = GeditState::CreateTemp;
                Action::Compute(self.cfg.prologue.sample(&mut self.rng))
            }
            GeditState::CreateTemp => {
                self.state = GeditState::Write;
                Action::Syscall(SyscallRequest::OpenCreate {
                    path: self.cfg.temp.clone(),
                })
            }
            GeditState::Write => {
                if self.fd.is_none() {
                    self.fd = last.and_then(|r| r.fd());
                    debug_assert!(self.fd.is_some(), "creat must return an fd");
                }
                if self.written >= self.cfg.file_size {
                    self.state = GeditState::GapBeforeClose;
                    return self.next_action(ctx, None);
                }
                let remaining = self.cfg.file_size - self.written;
                let bytes = remaining.min(self.cfg.chunk.max(1));
                self.written += bytes;
                Action::Syscall(SyscallRequest::Write {
                    fd: self.fd.expect("fd present while writing"),
                    bytes,
                })
            }
            GeditState::GapBeforeClose => {
                self.state = GeditState::Close;
                let g = self.gap(self.cfg.inter_call_gap);
                Action::Compute(g)
            }
            GeditState::Close => {
                self.state = GeditState::GapBeforeBackup;
                Action::Syscall(SyscallRequest::Close {
                    fd: self.fd.expect("fd open"),
                })
            }
            GeditState::GapBeforeBackup => {
                self.state = GeditState::BackupOriginal;
                let g = self.gap(self.cfg.inter_call_gap);
                Action::Compute(g)
            }
            GeditState::BackupOriginal => {
                self.state = GeditState::GapBeforeRename;
                Action::Syscall(SyscallRequest::Rename {
                    from: self.cfg.real.clone(),
                    to: self.cfg.backup.clone(),
                })
            }
            GeditState::GapBeforeRename => {
                self.state = GeditState::RenameIntoPlace;
                let g = self.gap(self.cfg.inter_call_gap);
                Action::Compute(g)
            }
            GeditState::RenameIntoPlace => {
                self.state = GeditState::GapBeforeChmod;
                Action::Syscall(SyscallRequest::Rename {
                    from: self.cfg.temp.clone(),
                    to: self.cfg.real.clone(),
                })
            }
            GeditState::GapBeforeChmod => {
                self.state = GeditState::Chmod;
                let g = self.gap(self.cfg.rename_chmod_gap);
                Action::Compute(g)
            }
            GeditState::Chmod => {
                self.state = GeditState::GapBeforeChown;
                Action::Syscall(SyscallRequest::Chmod {
                    path: self.cfg.real.clone(),
                    mode: self.cfg.mode,
                })
            }
            GeditState::GapBeforeChown => {
                self.state = GeditState::Chown;
                let g = self.gap(self.cfg.chmod_chown_gap);
                Action::Compute(g)
            }
            GeditState::Chown => {
                self.state = GeditState::Done;
                Action::Syscall(SyscallRequest::Chown {
                    path: self.cfg.real.clone(),
                    uid: self.cfg.owner.0,
                    gid: self.cfg.owner.1,
                })
            }
            GeditState::Done => Action::Exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tocttou_os::machine::MachineSpec;
    use tocttou_os::prelude::*;
    use tocttou_sim::time::SimTime;

    fn setup_kernel() -> Kernel {
        let mut k = Kernel::new(MachineSpec::smp_xeon().quiet(), 1);
        let root = InodeMeta {
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            mode: 0o755,
        };
        let user = InodeMeta {
            uid: Uid(1000),
            gid: Gid(1000),
            mode: 0o644,
        };
        k.vfs_mut().mkdir("/home", root).unwrap();
        k.vfs_mut().mkdir("/home/user", user).unwrap();
        let ino = k.vfs_mut().create_file("/home/user/doc.txt", user).unwrap();
        k.vfs_mut().append(ino, 2048).unwrap();
        k
    }

    fn cfg(size: u64) -> GeditConfig {
        GeditConfig::new(
            "/home/user/doc.txt",
            "/home/user/.goutputstream",
            "/home/user/doc.txt~",
            size,
        )
    }

    #[test]
    fn save_sequence_completes_with_correct_final_state() {
        let mut k = setup_kernel();
        let pid = k.spawn(
            "gedit",
            Uid::ROOT,
            Gid::ROOT,
            true,
            Box::new(GeditSave::new(cfg(8192), 2)),
        );
        let outcome = k.run_until_exit(pid, SimTime::from_secs(2));
        assert_eq!(outcome, RunOutcome::StopConditionMet);
        let saved = k.vfs().stat("/home/user/doc.txt").unwrap();
        assert_eq!(saved.size, 8192);
        assert_eq!(saved.uid, Uid(1000));
        assert_eq!(saved.mode, 0o644);
        assert_eq!(k.vfs().stat("/home/user/doc.txt~").unwrap().size, 2048);
        assert!(
            k.vfs().stat("/home/user/.goutputstream").is_err(),
            "temp consumed"
        );
        k.vfs().check_invariants().unwrap();
    }

    #[test]
    fn window_does_not_scale_with_file_size() {
        // The defining contrast with vi: rename→chown window is independent
        // of file size because the write happens *before* the window.
        let window_of = |size: u64| {
            let mut k = setup_kernel();
            let mut c = cfg(size);
            c.prologue = DurationDist::const_us(0.0);
            let pid = k.spawn(
                "gedit",
                Uid::ROOT,
                Gid::ROOT,
                true,
                Box::new(GeditSave::new(c, 4)),
            );
            k.run_until_exit(pid, SimTime::from_secs(5));
            let mut rename_into_place = None;
            let mut chown_enter = None;
            for r in k.trace().iter() {
                match &r.event {
                    OsEvent::SyscallEnter {
                        call: SyscallName::Rename,
                        path: Some(p),
                        ..
                    } if p == "/home/user/doc.txt" => rename_into_place = Some(r.at),
                    OsEvent::SyscallEnter {
                        call: SyscallName::Chown,
                        ..
                    } => chown_enter = Some(r.at),
                    _ => {}
                }
            }
            (chown_enter.unwrap() - rename_into_place.unwrap()).as_micros_f64()
        };
        let w_small = window_of(1024);
        let w_large = window_of(1024 * 1024);
        assert!((w_small - w_large).abs() < 2.0, "{w_small} vs {w_large}");
        // Rename 60 + gap 43 + chmod ~12 + gap 1 ≈ 120 µs at SMP speed.
        assert!((100.0..160.0).contains(&w_small), "window {w_small}");
    }

    #[test]
    fn multicore_gap_variant() {
        let c = cfg(1024).with_multicore_gaps();
        assert_eq!(c.rename_chmod_gap, SimDuration::from_micros(3));
    }

    #[test]
    fn mid_window_file_is_root_owned() {
        let mut k = setup_kernel();
        let mut c = cfg(1024);
        c.prologue = DurationDist::const_us(0.0);
        // Freeze just after the rename commit: the doc belongs to root.
        let pid = k.spawn(
            "gedit",
            Uid::ROOT,
            Gid::ROOT,
            true,
            Box::new(GeditSave::new(c, 6)),
        );
        // The save performs two renames (backup, then temp→real); the window
        // opens at the second rename's commit.
        k.run_until(
            |k| {
                k.trace()
                    .iter()
                    .filter(|r| {
                        matches!(
                            &r.event,
                            OsEvent::Commit {
                                call: SyscallName::Rename,
                                ..
                            }
                        )
                    })
                    .count()
                    == 2
            },
            SimTime::from_secs(1),
        );
        let st = k.vfs().stat("/home/user/doc.txt").unwrap();
        assert_eq!(st.uid, Uid::ROOT, "window open: root owns the document");
        k.run_until_exit(pid, SimTime::from_secs(1));
        assert_eq!(k.vfs().stat("/home/user/doc.txt").unwrap().uid, Uid(1000));
    }
}
