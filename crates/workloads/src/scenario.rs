//! Named experiment scenarios: machine + victim + attacker + filesystem
//! layout, matching the paper's evaluation sections.
//!
//! A [`Scenario`] is a *template*; each Monte-Carlo round instantiates a
//! fresh kernel from it with a round-specific seed via [`Scenario::build`],
//! runs it, and reads the outcome ([`Scenario::run_round`]).

use crate::attacker::{
    AttackFlag, AttackerConfig, AttackerHardlink, AttackerV1, AttackerV2, PipelinedDetector,
    PipelinedLinker,
};
use crate::dsl::{self, AttackerProfile, CompiledVictim};
use crate::gedit::{GeditConfig, GeditSave};
use crate::vi::{ViConfig, ViSave};
use std::cell::Cell;
use std::rc::Rc;
use tocttou_os::defense::DefensePolicy;
use tocttou_os::ids::{Gid, Pid, Uid};
use tocttou_os::kernel::{Checkpoint, Kernel, KernelPool};
use tocttou_os::machine::MachineSpec;
use tocttou_os::vfs::{InodeMeta, Vfs};
use tocttou_sim::dist::DurationDist;
use tocttou_sim::rng::SimRng;
use tocttou_sim::time::{SimDuration, SimTime};

/// Canonical filesystem layout for the attack experiments.
#[derive(Debug, Clone)]
pub struct Layout {
    /// The privileged file the attacker wants (`/etc/passwd`).
    pub passwd: String,
    /// The user's home directory.
    pub home: String,
    /// The document the root editor saves.
    pub doc: String,
    /// The editor's backup name.
    pub backup: String,
    /// gedit's scratch file.
    pub temp: String,
    /// The attacker's private directory (for v2's dummy).
    pub attack_dir: String,
    /// v2's dummy path.
    pub dummy: String,
    /// The attacker's uid/gid.
    pub attacker: (Uid, Gid),
}

impl Default for Layout {
    fn default() -> Self {
        Layout {
            passwd: "/etc/passwd".into(),
            home: "/home/user".into(),
            doc: "/home/user/doc.txt".into(),
            backup: "/home/user/doc.txt~".into(),
            temp: "/home/user/.goutputstream".into(),
            attack_dir: "/home/user/.attack".into(),
            dummy: "/home/user/.attack/dummy".into(),
            attacker: (Uid(1000), Gid(1000)),
        }
    }
}

/// Which victim program a scenario runs.
#[derive(Debug, Clone)]
pub enum VictimSpec {
    /// vi 6.1 (Section 2.1).
    Vi(ViConfig),
    /// gedit 2.8.3 (Section 2.2).
    Gedit(GeditConfig),
    /// A DSL-compiled victim (see [`crate::dsl`]): the trace is data, the
    /// interpreter replays it with the hand-written victims' RNG schedule.
    Compiled(CompiledVictim),
}

/// Which attacker program a scenario runs.
#[derive(Debug, Clone)]
pub enum AttackerSpec {
    /// Figure 2/4's program (cold libc pages: traps at first unlink).
    V1(AttackerConfig),
    /// Figure 9's pre-warming program.
    V2(AttackerConfig),
    /// The hardlink variant of v1: plants a second *name of the privileged
    /// inode* instead of a symlink, so the victim's `chown` needs no link
    /// traversal at all and symlink-only countermeasures see nothing.
    Hardlink(AttackerConfig),
    /// Section 7's two-thread pipelined program.
    Pipelined {
        /// Shared timing/path parameters.
        cfg: AttackerConfig,
        /// Flag-polling period of the symlink thread.
        poll_gap: SimDuration,
    },
    /// DSL-compiled attackers, one process per profile (see
    /// [`crate::dsl`]); more than one models multi-attacker interference.
    Compiled(Vec<AttackerProfile>),
}

/// A complete, named experiment configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name, used in reports.
    pub name: String,
    /// Machine profile.
    pub machine: MachineSpec,
    /// Victim program.
    pub victim: VictimSpec,
    /// Attacker program.
    pub attacker: AttackerSpec,
    /// Filesystem layout.
    pub layout: Layout,
    /// Wall-clock cap per round.
    pub max_round: SimDuration,
    /// Kernel TOCTTOU defense policy (default: off, like the paper's
    /// kernels).
    pub defense: DefensePolicy,
}

/// A built round, ready to run (or already run).
pub struct RoundHandles {
    /// The machine.
    pub kernel: Kernel,
    /// The victim's pid.
    pub victim: Pid,
    /// Attacker pids (two for the pipelined attacker).
    pub attackers: Vec<Pid>,
}

/// The outcome of one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundResult {
    /// True iff the privileged file ended up owned by the attacker — the
    /// paper's success criterion.
    pub success: bool,
    /// Whether the victim completed its save within the round cap.
    pub victim_exited: bool,
    /// Simulated time consumed.
    pub elapsed: SimDuration,
}

impl Scenario {
    /// Instantiates a kernel for one round. `seed` drives every stochastic
    /// element (background activity, victim prologue). Tracing is enabled
    /// iff `traced`.
    pub fn build(&self, seed: u64, traced: bool) -> RoundHandles {
        self.build_with(seed, traced, |_| {})
    }

    /// Like [`Scenario::build`], with an extra filesystem-setup hook run
    /// after the standard layout is populated (maze chains, pre-seeded
    /// files, …).
    pub fn build_with(
        &self,
        seed: u64,
        traced: bool,
        extra_fs: impl FnOnce(&mut Kernel),
    ) -> RoundHandles {
        let mut root_rng = SimRng::seed_from_u64(seed);
        let mut kernel = Kernel::new(self.machine.clone(), root_rng.next_u64());
        kernel.set_defense(self.defense);
        if !traced {
            kernel.disable_trace();
        }
        self.populate_base_fs(kernel.vfs_mut());
        extra_fs(&mut kernel);
        self.populate_doc(kernel.vfs_mut());
        self.spawn_workloads(kernel, &mut root_rng)
    }

    /// Builds the scenario's initial filesystem image — the standard
    /// layout plus the pre-existing document — as a standalone [`Vfs`].
    ///
    /// Populating this image costs a dozen path resolutions; Monte-Carlo
    /// drivers build it **once** per batch and hand it to
    /// [`Scenario::build_pooled`], which clones it into each round instead
    /// of re-resolving. The clone is state-identical to in-place
    /// population (same inode and semaphore numbering), so rounds built
    /// either way behave bit-identically.
    pub fn template_vfs(&self) -> Vfs {
        let mut vfs = Vfs::new();
        self.populate_base_fs(&mut vfs);
        self.warm_scenario_paths(&mut vfs);
        self.populate_doc(&mut vfs);
        vfs.freeze();
        vfs
    }

    /// Builds only the standard filesystem layout — everything in
    /// [`template_vfs`](Self::template_vfs) *except* the pre-existing
    /// document.
    ///
    /// The base layout depends only on [`Layout`] and the attacker's
    /// identity, not on any swept parameter (file size, detection period,
    /// CPU count, attacker variant), so one base image can be shared by an
    /// entire parameter grid and forked per point with
    /// [`template_vfs_from_base`](Self::template_vfs_from_base).
    pub fn base_vfs(&self) -> Vfs {
        let mut vfs = Vfs::new();
        self.populate_base_fs(&mut vfs);
        self.warm_scenario_paths(&mut vfs);
        vfs.freeze();
        vfs
    }

    /// Pre-interns every [`Layout`] path into the image's name tables so
    /// rounds forked from it resolve them without string hashing. Warming
    /// order is fixed (it assigns interned name ids), and the warm set
    /// depends only on the layout — never on swept parameters — so a
    /// warmed base image stays shareable across a whole sweep grid.
    fn warm_scenario_paths(&self, vfs: &mut Vfs) {
        for path in [
            &self.layout.passwd,
            &self.layout.home,
            &self.layout.doc,
            &self.layout.backup,
            &self.layout.temp,
            &self.layout.attack_dir,
            &self.layout.dummy,
        ] {
            vfs.warm_path(path);
        }
    }

    /// Snapshot/forks a per-point template from a shared `base` image
    /// (built by [`base_vfs`](Self::base_vfs)): clones the base and adds
    /// this scenario's document on top.
    ///
    /// The document is the *last* inode the full build creates, so the
    /// fork reproduces [`template_vfs`](Self::template_vfs) exactly —
    /// same inode and semaphore numbering — as long as `base` came from a
    /// scenario with the same [`Layout`] and attacker identity. The sweep
    /// engine leans on this to skip the base-layout path resolutions at
    /// every grid point; `fork_matches_full_template_build` and the
    /// cross-seed fork-equivalence test pin the guarantee down.
    pub fn template_vfs_from_base(&self, base: &Vfs) -> Vfs {
        let mut vfs = base.clone();
        self.populate_doc(&mut vfs);
        vfs.freeze();
        vfs
    }

    /// Instantiates one round from a prebuilt filesystem `template` on the
    /// recycled buffers of `pool` — the fast path for Monte-Carlo batches.
    ///
    /// Equivalent to [`Scenario::build`] (the template stands in for the
    /// standard population, the pool only donates allocations); pair with
    /// [`Kernel::recycle`] to thread one pool through many rounds.
    pub fn build_pooled(
        &self,
        seed: u64,
        traced: bool,
        template: &Vfs,
        pool: KernelPool,
    ) -> RoundHandles {
        let mut root_rng = SimRng::seed_from_u64(seed);
        let mut kernel = Kernel::with_pool(self.machine.clone(), root_rng.next_u64(), pool);
        kernel.set_defense(self.defense);
        if !traced {
            kernel.disable_trace();
        }
        kernel.vfs_mut().clone_from(template);
        self.spawn_workloads(kernel, &mut root_rng)
    }

    /// Captures this scenario's **warm-boot checkpoint**: the machine
    /// simulated once up to the divergence point — booted, defense policy
    /// installed, filesystem `template` mounted — and frozen right before
    /// the first per-round RNG draw (background arming / process spawning).
    ///
    /// Monte-Carlo drivers take the checkpoint once per batch and resume
    /// every round from it with
    /// [`build_from_checkpoint`](Self::build_from_checkpoint), skipping the
    /// seed-independent prefix. The checkpoint is `Send + Sync`, so one
    /// instance serves all parallel workers.
    pub fn round_checkpoint(&self, template: &Vfs) -> Checkpoint {
        // The seed is irrelevant: nothing before the checkpoint draws from
        // the RNG, and `Checkpoint::boot` reseeds wholesale.
        let mut kernel = Kernel::boot_unarmed(self.machine.clone(), 0, KernelPool::new());
        kernel.set_defense(self.defense);
        kernel.vfs_mut().clone_from(template);
        kernel.checkpoint()
    }

    /// Instantiates one round by restoring the warm checkpoint `ck` onto
    /// the recycled buffers of `pool` — the warm-boot fast path.
    ///
    /// Byte-identical to [`Scenario::build_pooled`] with the same `seed`
    /// and the template the checkpoint was taken from: the root RNG seed
    /// schedule, kernel event sequence numbers and pid assignment are all
    /// reproduced exactly.
    pub fn build_from_checkpoint(
        &self,
        ck: &Checkpoint,
        seed: u64,
        traced: bool,
        pool: KernelPool,
    ) -> RoundHandles {
        let mut root_rng = SimRng::seed_from_u64(seed);
        let mut kernel = ck.boot(root_rng.next_u64(), pool);
        if !traced {
            kernel.disable_trace();
        }
        self.spawn_workloads(kernel, &mut root_rng)
    }

    /// Spawns the victim and attacker processes into a prepared kernel
    /// (common tail of every build path; process ordering fixes pids and
    /// therefore determinism).
    fn spawn_workloads(&self, mut kernel: Kernel, root_rng: &mut SimRng) -> RoundHandles {
        let victim_seed = root_rng.next_u64();
        let victim = match &self.victim {
            VictimSpec::Vi(cfg) => kernel.spawn(
                "vi",
                Uid::ROOT,
                Gid::ROOT,
                true, // long-running editor: libc fully mapped
                Box::new(ViSave::new(cfg.clone(), victim_seed)),
            ),
            VictimSpec::Gedit(cfg) => kernel.spawn(
                "gedit",
                Uid::ROOT,
                Gid::ROOT,
                true,
                Box::new(GeditSave::new(cfg.clone(), victim_seed)),
            ),
            VictimSpec::Compiled(cfg) => kernel.spawn(
                &cfg.name,
                Uid::ROOT,
                Gid::ROOT,
                true, // long-running privileged program, like the editors
                Box::new(cfg.logic(victim_seed)),
            ),
        };

        let (auid, agid) = self.layout.attacker;
        let attacker_seed = root_rng.next_u64();
        let attackers = match &self.attacker {
            AttackerSpec::V1(cfg) => vec![kernel.spawn(
                "attacker-v1",
                auid,
                agid,
                false, // freshly exec'ed: cold libc pages
                Box::new(AttackerV1::new(cfg.clone(), attacker_seed)),
            )],
            AttackerSpec::V2(cfg) => vec![kernel.spawn(
                "attacker-v2",
                auid,
                agid,
                false,
                Box::new(AttackerV2::new(cfg.clone(), attacker_seed)),
            )],
            AttackerSpec::Hardlink(cfg) => vec![kernel.spawn(
                "attacker-hardlink",
                auid,
                agid,
                false, // freshly exec'ed, like v1
                Box::new(AttackerHardlink::new(cfg.clone(), attacker_seed)),
            )],
            AttackerSpec::Pipelined { cfg, poll_gap } => {
                let flag: AttackFlag = Rc::new(Cell::new(false));
                let t1 = kernel.spawn(
                    "attacker-detect",
                    auid,
                    agid,
                    true, // Section 7 builds on the warmed v2 insight
                    Box::new(PipelinedDetector::new(
                        cfg.clone(),
                        flag.clone(),
                        attacker_seed,
                    )),
                );
                let t2 = kernel.spawn(
                    "attacker-link",
                    auid,
                    agid,
                    true,
                    Box::new(PipelinedLinker::new(cfg.clone(), flag, *poll_gap)),
                );
                vec![t1, t2]
            }
            AttackerSpec::Compiled(profiles) => profiles
                .iter()
                .enumerate()
                .map(|(i, prof)| {
                    // The first attacker reuses the schedule slot every
                    // scenario draws; extra attackers each draw one more
                    // seed (only scenarios with no hand-written
                    // counterpart have extras, so oracles are unaffected).
                    let seed = if i == 0 {
                        attacker_seed
                    } else {
                        root_rng.next_u64()
                    };
                    kernel.spawn(
                        &prof.name,
                        auid,
                        agid,
                        prof.pretouch,
                        Box::new(dsl::DslAttacker::new(prof.clone(), seed)),
                    )
                })
                .collect(),
        };

        RoundHandles {
            kernel,
            victim,
            attackers,
        }
    }

    fn populate_base_fs(&self, vfs: &mut Vfs) {
        let root = InodeMeta {
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            mode: 0o755,
        };
        let (auid, agid) = self.layout.attacker;
        let user = InodeMeta {
            uid: auid,
            gid: agid,
            mode: 0o755,
        };
        vfs.mkdir("/etc", root).expect("layout: /etc");
        vfs.create_file(&self.layout.passwd, root)
            .expect("layout: passwd");
        vfs.mkdir("/home", root).expect("layout: /home");
        vfs.mkdir(&self.layout.home, user).expect("layout: home");
        vfs.mkdir(&self.layout.attack_dir, user)
            .expect("layout: attack dir");
    }

    fn populate_doc(&self, vfs: &mut Vfs) {
        let (auid, agid) = self.layout.attacker;
        // The document exists and belongs to the attacker before the save.
        let doc_meta = InodeMeta {
            uid: auid,
            gid: agid,
            mode: 0o644,
        };
        let ino = vfs
            .create_file(&self.layout.doc, doc_meta)
            .expect("layout: doc");
        let size = match &self.victim {
            VictimSpec::Vi(c) => c.file_size,
            VictimSpec::Gedit(c) => c.file_size,
            VictimSpec::Compiled(c) => c.doc_size,
        };
        vfs.append(ino, size).expect("layout: doc content");
        // Compiled scenarios may need extra state (spool files, package
        // trees). Created after the doc so the base-image fork invariant
        // (doc is the tail of population) still holds.
        if let VictimSpec::Compiled(c) = &self.victim {
            dsl::populate_extras(c, &self.layout, vfs);
        }
    }

    /// Runs one untraced round and reports the outcome.
    pub fn run_round(&self, seed: u64) -> RoundResult {
        let mut handles = self.build(seed, false);
        self.finish_round(&mut handles)
    }

    /// Runs one traced round; returns the outcome and the kernel (whose
    /// trace backs event analysis and timelines).
    pub fn run_traced(&self, seed: u64) -> (RoundResult, RoundHandles) {
        let mut handles = self.build(seed, true);
        let result = self.finish_round(&mut handles);
        (result, handles)
    }

    /// Runs one untraced round on recycled buffers, returning the outcome
    /// and the pool for the next round. Behaves exactly like
    /// [`Scenario::run_round`], only faster in a loop.
    pub fn run_round_pooled(
        &self,
        seed: u64,
        template: &Vfs,
        pool: KernelPool,
    ) -> (RoundResult, KernelPool) {
        let mut handles = self.build_pooled(seed, false, template, pool);
        let result = self.finish_round(&mut handles);
        (result, handles.kernel.recycle())
    }

    /// Runs a built round to completion (victim exit plus a grace period
    /// for in-flight attacker calls) and reads the outcome. Public so
    /// custom-built rounds ([`Scenario::build_with`]) can reuse the
    /// standard round protocol.
    pub fn finish_round(&self, handles: &mut RoundHandles) -> RoundResult {
        let deadline = SimTime::ZERO + self.max_round;
        let outcome = handles.kernel.run_until_exit(handles.victim, deadline);
        // Give the attacker a short grace period to finish in-flight calls
        // (so traces contain complete timelines).
        let victim_exited = outcome == tocttou_os::kernel::RunOutcome::StopConditionMet;
        if victim_exited {
            let grace = handles.kernel.now() + SimDuration::from_millis(2);
            let attackers = handles.attackers.clone();
            handles.kernel.run_until(
                move |k| {
                    attackers
                        .iter()
                        .all(|&p| k.state_of(p) == tocttou_os::process::ProcState::Exited)
                },
                grace.min(deadline),
            );
        }
        let success = match &self.victim {
            // Compiled scenarios carry their own ground-truth predicate
            // (ownership transfer, mode clobber, privileged-file growth).
            VictimSpec::Compiled(c) => c.success.eval(handles.kernel.vfs(), &self.layout),
            // The paper's criterion for the hand-written attacks.
            _ => {
                let passwd = handles
                    .kernel
                    .vfs()
                    .stat(&self.layout.passwd)
                    .expect("passwd exists");
                passwd.uid == self.layout.attacker.0
            }
        };
        RoundResult {
            success,
            victim_exited,
            elapsed: handles.kernel.now().saturating_since(SimTime::ZERO),
        }
    }

    // ---- laxity stratification -------------------------------------------

    /// The victim's *laxity window*: the inclusive integer-nanosecond bounds
    /// of its uniform editing-prologue phase, when it has one.
    ///
    /// The uniprocessor scenarios draw the save's slice phase from
    /// `Uniform(0, timeslice)` — exactly the laxity term of the paper's
    /// Formula (1). A rare-event estimator stratifies over this axis; any
    /// other prologue shape (constant, Gaussian, compiled victims) returns
    /// `None` and the estimator falls back to a single stratum.
    pub fn laxity_window_ns(&self) -> Option<(u64, u64)> {
        let prologue = match &self.victim {
            VictimSpec::Vi(c) => &c.prologue,
            VictimSpec::Gedit(c) => &c.prologue,
            VictimSpec::Compiled(_) => return None,
        };
        match prologue {
            DurationDist::Uniform(lo, hi) => Some((lo.as_nanos(), hi.as_nanos())),
            _ => None,
        }
    }

    /// Conditions the scenario on its prologue phase landing in
    /// `[lo_n, hi_n]` nanoseconds (inclusive): a clone whose prologue is the
    /// restricted uniform, tagged with a `#lax[lo,hi]` name suffix so
    /// content-addressed stores key each stratum separately.
    ///
    /// Because the prologue samples a *discrete* uniform over inclusive
    /// nanosecond bounds, replacing the bounds with a sub-range is the exact
    /// conditional law — no acceptance-rejection, no approximation — so
    /// stratum estimates recombine unbiasedly under width weights
    /// `(hi_n − lo_n + 1) / (hi − lo + 1)`.
    ///
    /// Returns `None` when the scenario has no laxity window or the
    /// requested range is not a sub-range of it.
    pub fn restrict_laxity(&self, lo_n: u64, hi_n: u64) -> Option<Scenario> {
        let (lo, hi) = self.laxity_window_ns()?;
        if lo_n < lo || hi_n > hi || lo_n > hi_n {
            return None;
        }
        let dist =
            DurationDist::Uniform(SimDuration::from_nanos(lo_n), SimDuration::from_nanos(hi_n));
        let mut restricted = self.clone();
        match &mut restricted.victim {
            VictimSpec::Vi(c) => c.prologue = dist,
            VictimSpec::Gedit(c) => c.prologue = dist,
            VictimSpec::Compiled(_) => return None,
        }
        restricted.name = format!("{}#lax[{lo_n},{hi_n}]", self.name);
        Some(restricted)
    }

    // ---- named paper scenarios -------------------------------------------

    /// Section 4.1 / Figure 6: vi on the uniprocessor. The editing prologue
    /// is uniform over a full time slice so the save starts at a random
    /// slice phase.
    pub fn vi_uniprocessor(file_size: u64) -> Scenario {
        let layout = Layout::default();
        let machine = MachineSpec::uniprocessor();
        let mut vi = ViConfig::new(layout.doc.as_str(), layout.backup.as_str(), file_size);
        vi.owner = layout.attacker;
        vi.prologue = DurationDist::uniform_us(0.0, machine.timeslice.as_micros_f64());
        let attacker = AttackerConfig::vi_smp(layout.doc.as_str(), layout.passwd.as_str());
        Scenario {
            name: format!("vi-uniprocessor-{}B", file_size),
            machine,
            victim: VictimSpec::Vi(vi),
            attacker: AttackerSpec::V1(attacker),
            layout,
            max_round: SimDuration::from_secs(2),
            defense: DefensePolicy::Off,
        }
    }

    /// Section 5 / Figure 7 / Table 1: vi on the 2-way SMP.
    pub fn vi_smp(file_size: u64) -> Scenario {
        let layout = Layout::default();
        let mut vi = ViConfig::new(layout.doc.as_str(), layout.backup.as_str(), file_size);
        vi.owner = layout.attacker;
        let attacker = AttackerConfig::vi_smp(layout.doc.as_str(), layout.passwd.as_str());
        Scenario {
            name: format!("vi-smp-{}B", file_size),
            machine: MachineSpec::smp_xeon(),
            victim: VictimSpec::Vi(vi),
            attacker: AttackerSpec::V1(attacker),
            layout,
            max_round: SimDuration::from_secs(2),
            defense: DefensePolicy::Off,
        }
    }

    /// Section 4.2: gedit on the uniprocessor (the no-success baseline).
    pub fn gedit_uniprocessor(file_size: u64) -> Scenario {
        let layout = Layout::default();
        let machine = MachineSpec::uniprocessor();
        let mut gedit = GeditConfig::new(
            layout.doc.as_str(),
            layout.temp.as_str(),
            layout.backup.as_str(),
            file_size,
        );
        gedit.owner = layout.attacker;
        gedit.prologue = DurationDist::uniform_us(0.0, machine.timeslice.as_micros_f64());
        let mut attacker = AttackerConfig::gedit_smp(layout.doc.as_str(), layout.passwd.as_str());
        attacker.dummy = layout.dummy.as_str().into();
        Scenario {
            name: format!("gedit-uniprocessor-{}B", file_size),
            machine,
            victim: VictimSpec::Gedit(gedit),
            attacker: AttackerSpec::V1(attacker),
            layout,
            max_round: SimDuration::from_secs(2),
            defense: DefensePolicy::Off,
        }
    }

    /// Section 6.1 / Table 2: gedit on the 2-way SMP (43 µs rename→chmod
    /// gap; observed success ≈ 83 %).
    pub fn gedit_smp(file_size: u64) -> Scenario {
        let layout = Layout::default();
        let mut gedit = GeditConfig::new(
            layout.doc.as_str(),
            layout.temp.as_str(),
            layout.backup.as_str(),
            file_size,
        );
        gedit.owner = layout.attacker;
        let mut attacker = AttackerConfig::gedit_smp(layout.doc.as_str(), layout.passwd.as_str());
        attacker.dummy = layout.dummy.as_str().into();
        Scenario {
            name: format!("gedit-smp-{}B", file_size),
            machine: MachineSpec::smp_xeon(),
            victim: VictimSpec::Gedit(gedit),
            attacker: AttackerSpec::V1(attacker),
            layout,
            max_round: SimDuration::from_secs(2),
            defense: DefensePolicy::Off,
        }
    }

    fn multicore_gedit_machine() -> MachineSpec {
        let mut machine = MachineSpec::multicore_pentium_d();
        // Section 6.2's event analyses (Figures 8 and 10) show a ~55 µs
        // rename on this machine/filesystem, with the new name observable
        // only late in the call (Figure 10's detecting stat starts 27 µs in
        // and samples near the rename's end).
        machine.costs.rename_us = 55.0;
        machine.costs.rename_visible_frac = 0.88;
        machine
    }

    /// Section 6.2.1 / Figure 8: gedit on the multi-core with attacker v1
    /// (3 µs victim gap vs 17 µs attacker gap: near-certain failure).
    pub fn gedit_multicore_v1(file_size: u64) -> Scenario {
        let layout = Layout::default();
        let mut gedit = GeditConfig::new(
            layout.doc.as_str(),
            layout.temp.as_str(),
            layout.backup.as_str(),
            file_size,
        )
        .with_multicore_gaps();
        gedit.owner = layout.attacker;
        let mut attacker =
            AttackerConfig::gedit_multicore_v1(layout.doc.as_str(), layout.passwd.as_str());
        attacker.dummy = layout.dummy.as_str().into();
        Scenario {
            name: format!("gedit-multicore-v1-{}B", file_size),
            machine: Self::multicore_gedit_machine(),
            victim: VictimSpec::Gedit(gedit),
            attacker: AttackerSpec::V1(attacker),
            layout,
            max_round: SimDuration::from_secs(2),
            defense: DefensePolicy::Off,
        }
    }

    /// Section 6.2.2 / Figures 9–10: gedit on the multi-core with the
    /// improved attacker v2 ("we begin to see many successes").
    pub fn gedit_multicore_v2(file_size: u64) -> Scenario {
        let layout = Layout::default();
        let mut gedit = GeditConfig::new(
            layout.doc.as_str(),
            layout.temp.as_str(),
            layout.backup.as_str(),
            file_size,
        )
        .with_multicore_gaps();
        gedit.owner = layout.attacker;
        let mut attacker =
            AttackerConfig::gedit_multicore_v2(layout.doc.as_str(), layout.passwd.as_str());
        attacker.dummy = layout.dummy.as_str().into();
        Scenario {
            name: format!("gedit-multicore-v2-{}B", file_size),
            machine: Self::multicore_gedit_machine(),
            victim: VictimSpec::Gedit(gedit),
            attacker: AttackerSpec::V2(attacker),
            layout,
            max_round: SimDuration::from_secs(2),
            defense: DefensePolicy::Off,
        }
    }

    /// Section 7 / Figure 11: the pipelined two-thread attacker against a
    /// vi save of the given size on the multi-core (the long unlink
    /// truncation tail is what the second thread overlaps).
    pub fn pipelined_attack(file_size: u64) -> Scenario {
        let layout = Layout::default();
        let mut vi = ViConfig::new(layout.doc.as_str(), layout.backup.as_str(), file_size);
        vi.owner = layout.attacker;
        let attacker = AttackerConfig::vi_smp(layout.doc.as_str(), layout.passwd.as_str());
        Scenario {
            name: format!("pipelined-{}B", file_size),
            machine: MachineSpec::multicore_pentium_d(),
            victim: VictimSpec::Vi(vi),
            attacker: AttackerSpec::Pipelined {
                cfg: attacker,
                poll_gap: SimDuration::from_micros(1),
            },
            layout,
            max_round: SimDuration::from_secs(2),
            defense: DefensePolicy::Off,
        }
    }

    /// The hardlink-swap attack: vi on the 2-way SMP with the attacker
    /// planting a **hard link** to `/etc/passwd` instead of a symlink.
    ///
    /// Same detection loop and window as [`Self::vi_smp`], but the planted
    /// name *is* the privileged inode — `stat` on it reports a root-owned
    /// regular file with `nlink = 2`, and the victim's `chown` lands on
    /// `/etc/passwd` without traversing any link. This is the classic
    /// bypass of symlink-only TOCTTOU countermeasures; the detector still
    /// sees it through the `link` namespace mutation.
    pub fn hardlink_vi_smp(file_size: u64) -> Scenario {
        let layout = Layout::default();
        let mut vi = ViConfig::new(layout.doc.as_str(), layout.backup.as_str(), file_size);
        vi.owner = layout.attacker;
        let attacker = AttackerConfig::vi_smp(layout.doc.as_str(), layout.passwd.as_str());
        Scenario {
            name: format!("vi-hardlink-smp-{}B", file_size),
            machine: MachineSpec::smp_xeon(),
            victim: VictimSpec::Vi(vi),
            attacker: AttackerSpec::Hardlink(attacker),
            layout,
            max_round: SimDuration::from_secs(2),
            defense: DefensePolicy::Off,
        }
    }

    /// Returns the scenario with the given kernel defense policy — the
    /// Section 8 counterfactual ("what if the kernel guarded check-use
    /// invariants?").
    pub fn with_defense(mut self, policy: DefensePolicy) -> Scenario {
        self.defense = policy;
        if policy != DefensePolicy::Off {
            self.name = format!("{}+edgi", self.name);
        }
        self
    }

    /// The same attack as [`Self::pipelined_attack`] but with the normal
    /// sequential attacker, for the Figure 11 comparison.
    pub fn sequential_attack(file_size: u64) -> Scenario {
        let mut s = Self::pipelined_attack(file_size);
        s.name = format!("sequential-{}B", file_size);
        if let AttackerSpec::Pipelined { cfg, .. } = s.attacker {
            s.attacker = AttackerSpec::V1(cfg);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build_and_round_runs() {
        for scenario in [
            Scenario::vi_smp(20 * 1024),
            Scenario::gedit_smp(2048),
            Scenario::gedit_multicore_v1(2048),
            Scenario::gedit_multicore_v2(2048),
        ] {
            let r = scenario.run_round(1);
            assert!(r.victim_exited, "{}: victim must finish", scenario.name);
            assert!(r.elapsed > SimDuration::ZERO);
        }
    }

    #[test]
    fn vi_smp_succeeds_reliably() {
        let scenario = Scenario::vi_smp(100 * 1024);
        let successes = (0..20)
            .filter(|&i| scenario.run_round(1000 + i).success)
            .count();
        assert!(successes >= 19, "vi SMP ~100%: got {successes}/20");
    }

    #[test]
    fn hardlink_vi_smp_succeeds_reliably() {
        // The hardlink swap exploits the same window as the symlink swap,
        // so on the SMP it should land with comparable reliability — and
        // when it does, /etc/passwd itself must carry the extra name.
        let scenario = Scenario::hardlink_vi_smp(100 * 1024);
        let mut successes = 0;
        for i in 0..20 {
            let (r, handles) = scenario.run_traced(1000 + i);
            if r.success {
                successes += 1;
                let pw = handles.kernel.vfs().stat(&scenario.layout.passwd).unwrap();
                let doc = handles.kernel.vfs().stat(&scenario.layout.doc).unwrap();
                assert_eq!(doc.ino, pw.ino, "doc name aliases the passwd inode");
                assert!(pw.nlink >= 2, "hardlink bumped the link count");
                assert!(!doc.is_symlink, "no symlink involved");
            }
        }
        assert!(successes >= 19, "hardlink vi SMP ~100%: got {successes}/20");
    }

    #[test]
    fn vi_uniprocessor_rarely_succeeds_small_file() {
        let scenario = Scenario::vi_uniprocessor(100 * 1024);
        let successes = (0..30)
            .filter(|&i| scenario.run_round(2000 + i).success)
            .count();
        // ~1.7 % expected; 30 rounds should see at most a couple.
        assert!(successes <= 3, "uniprocessor vi ~2%: got {successes}/30");
    }

    #[test]
    fn laxity_window_and_restriction() {
        let s = Scenario::vi_uniprocessor(2048);
        let (lo, hi) = s.laxity_window_ns().expect("uniform prologue");
        assert_eq!((lo, hi), (0, 100_000_000), "one 100 ms timeslice");
        assert!(Scenario::gedit_uniprocessor(2048)
            .laxity_window_ns()
            .is_some());

        // An SMP scenario keeps vi's default 200 µs prologue — still uniform.
        assert_eq!(
            Scenario::vi_smp(2048).laxity_window_ns(),
            Some((0, 200_000))
        );

        let sub = s.restrict_laxity(10, 20).expect("sub-range");
        assert_eq!(sub.laxity_window_ns(), Some((10, 20)));
        assert_eq!(sub.name, "vi-uniprocessor-2048B#lax[10,20]");
        // The full range round-trips; out-of-range / inverted are refused.
        assert_eq!(
            s.restrict_laxity(lo, hi).unwrap().laxity_window_ns(),
            Some((lo, hi))
        );
        assert!(s.restrict_laxity(0, hi + 1).is_none());
        assert!(s.restrict_laxity(20, 10).is_none());

        // Restriction is exact conditioning: a restricted round's prologue
        // draw lands inside the sub-range, and the rest of the round is the
        // ordinary engine (it still runs to completion).
        let r = sub.run_round(7);
        assert!(r.victim_exited);

        // Constant-prologue scenarios have no laxity axis.
        let mut flat = Scenario::vi_uniprocessor(2048);
        if let VictimSpec::Vi(c) = &mut flat.victim {
            c.prologue = DurationDist::const_us(5.0);
        }
        assert_eq!(flat.laxity_window_ns(), None);
        assert!(flat.restrict_laxity(0, 1).is_none());
    }

    #[test]
    fn restricted_strata_recombine_to_the_full_law() {
        // Stratifying the discrete uniform is exact: sampling the stratum
        // scenario conditions the phase on the sub-range, so the stratum
        // success indicator has exactly the conditional rate. Spot-check
        // that the hot band found by phase scanning really is hot and a
        // dead band really is dead.
        let s = Scenario::vi_uniprocessor(2048);
        let hot = s.restrict_laxity(99_218_750, 100_000_000).unwrap();
        let hot_hits = (0..40).filter(|&i| hot.run_round(500 + i).success).count();
        assert!(hot_hits >= 3, "hot stratum ~20%: got {hot_hits}/40");
        let dead = s.restrict_laxity(0, 50_000_000).unwrap();
        let dead_hits = (0..40).filter(|&i| dead.run_round(500 + i).success).count();
        assert_eq!(dead_hits, 0, "first half of the slice cannot land");
    }

    #[test]
    fn gedit_uniprocessor_never_succeeds() {
        let scenario = Scenario::gedit_uniprocessor(2048);
        let successes = (0..30)
            .filter(|&i| scenario.run_round(3000 + i).success)
            .count();
        assert_eq!(successes, 0, "gedit uniprocessor must be 0%");
    }

    #[test]
    fn gedit_smp_succeeds_often() {
        let scenario = Scenario::gedit_smp(2048);
        let successes = (0..40)
            .filter(|&i| scenario.run_round(4000 + i).success)
            .count();
        // Paper: ~83 %. Accept a generous band for 40 rounds.
        assert!(
            (24..=40).contains(&successes),
            "gedit SMP ~83%: got {successes}/40"
        );
    }

    #[test]
    fn gedit_multicore_v1_fails_v2_succeeds_sometimes() {
        let v1 = Scenario::gedit_multicore_v1(2048);
        let v1_successes = (0..30).filter(|&i| v1.run_round(5000 + i).success).count();
        assert!(v1_successes <= 1, "v1 multicore ~0%: got {v1_successes}/30");

        let v2 = Scenario::gedit_multicore_v2(2048);
        let v2_successes = (0..30).filter(|&i| v2.run_round(6000 + i).success).count();
        assert!(
            v2_successes >= 4,
            "v2 multicore 'many successes': got {v2_successes}/30"
        );
    }

    #[test]
    fn traced_round_produces_events() {
        let (r, handles) = Scenario::gedit_smp(2048).run_traced(7);
        assert!(r.victim_exited);
        assert!(handles.kernel.trace().len() > 20);
    }

    #[test]
    fn deterministic_rounds() {
        let s = Scenario::gedit_smp(2048);
        assert_eq!(s.run_round(42), s.run_round(42));
        let v = Scenario::vi_smp(1);
        assert_eq!(v.run_round(43), v.run_round(43));
    }

    #[test]
    fn pooled_rounds_match_plain_rounds_exactly() {
        // The fast path (template VFS + recycled kernel buffers) must be
        // observably identical to building every round from scratch —
        // the parallel Monte-Carlo engine's correctness rests on this.
        for scenario in [Scenario::vi_smp(1), Scenario::gedit_smp(2048)] {
            let template = scenario.template_vfs();
            let mut pool = KernelPool::new();
            for seed in 0..12 {
                let plain = scenario.run_round(seed);
                let (pooled, returned) = scenario.run_round_pooled(seed, &template, pool);
                pool = returned;
                assert_eq!(plain, pooled, "{} seed {seed}", scenario.name);
            }
        }
    }

    #[test]
    fn template_vfs_matches_populated_kernel() {
        let scenario = Scenario::gedit_smp(2048);
        let template = scenario.template_vfs();
        // Same entries, same inode numbering as the in-kernel population.
        let handles = scenario.build(5, false);
        for path in [
            &scenario.layout.passwd,
            &scenario.layout.home,
            &scenario.layout.doc,
            &scenario.layout.attack_dir,
        ] {
            let a = template.stat(path).expect("template entry");
            let b = handles.kernel.vfs().stat(path).expect("kernel entry");
            assert_eq!(a.ino, b.ino, "{path}");
            assert_eq!(a.uid, b.uid, "{path}");
        }
    }

    #[test]
    fn fork_matches_full_template_build() {
        // One shared base image must fork into templates state-identical
        // to full per-scenario builds — across families, file sizes, and
        // attacker variants (everything a sweep grid varies).
        let scenarios = [
            Scenario::vi_smp(100 * 1024),
            Scenario::vi_smp(1),
            Scenario::vi_uniprocessor(40 * 1024),
            Scenario::gedit_smp(2048),
            Scenario::gedit_multicore_v1(2048),
            Scenario::gedit_multicore_v2(2048),
            Scenario::pipelined_attack(512),
            Scenario::hardlink_vi_smp(100 * 1024),
        ];
        let base = scenarios[0].base_vfs();
        for scenario in &scenarios {
            assert_eq!(
                base,
                scenario.base_vfs(),
                "{}: base image must not depend on swept parameters",
                scenario.name
            );
            assert_eq!(
                scenario.template_vfs_from_base(&base),
                scenario.template_vfs(),
                "{}: forked template diverged from full build",
                scenario.name
            );
        }
    }
}

#[cfg(test)]
mod defense_tests {
    use super::*;
    use tocttou_os::defense::DefensePolicy;

    #[test]
    fn edgi_defense_stops_every_attack() {
        // The Section 8 counterfactual: with check-use invariants guarded,
        // none of the paper's attacks gives away the privileged file.
        for scenario in [
            Scenario::vi_smp(100 * 1024).with_defense(DefensePolicy::Edgi),
            Scenario::vi_smp(1).with_defense(DefensePolicy::Edgi),
            Scenario::gedit_smp(2048).with_defense(DefensePolicy::Edgi),
            Scenario::gedit_multicore_v2(2048).with_defense(DefensePolicy::Edgi),
        ] {
            for seed in 0..15 {
                let r = scenario.run_round(seed);
                assert!(
                    !r.success,
                    "{} seed {seed}: defense must hold",
                    scenario.name
                );
            }
        }
    }

    #[test]
    fn defense_denies_instead_of_chowning() {
        // When the attack would have landed, the victim's chown is denied
        // (EACCES) and the denial is visible in the defense stats.
        let scenario = Scenario::vi_smp(100 * 1024).with_defense(DefensePolicy::Edgi);
        let mut denied = 0;
        for seed in 0..10 {
            let (r, handles) = scenario.run_traced(seed);
            assert!(!r.success);
            denied += handles.kernel.defense().denials();
        }
        assert!(denied >= 8, "most rounds should trip the guard: {denied}");
    }

    #[test]
    fn defense_does_not_break_benign_saves() {
        // Without an attacker interfering, the guarded save completes and
        // ownership is restored normally (no false positives).
        use tocttou_os::prelude::*;
        let scenario = Scenario::vi_smp(50 * 1024).with_defense(DefensePolicy::Edgi);
        let mut handles = scenario.build(3, false);
        // Run only the victim (ignore the attacker by removing its work:
        // simplest is to let it run — but to test benignity we use a fresh
        // kernel without attacker).
        let mut kernel = Kernel::new(scenario.machine.clone(), 9);
        kernel.set_defense(DefensePolicy::Edgi);
        let meta_root = InodeMeta {
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            mode: 0o755,
        };
        let meta_user = InodeMeta {
            uid: Uid(1000),
            gid: Gid(1000),
            mode: 0o644,
        };
        kernel.vfs_mut().mkdir("/home", meta_root).unwrap();
        kernel.vfs_mut().mkdir("/home/user", meta_user).unwrap();
        kernel
            .vfs_mut()
            .create_file("/home/user/doc.txt", meta_user)
            .unwrap();
        let cfg = crate::vi::ViConfig::new("/home/user/doc.txt", "/home/user/doc.txt~", 4096);
        let pid = kernel.spawn(
            "vi",
            Uid::ROOT,
            Gid::ROOT,
            true,
            Box::new(crate::vi::ViSave::new(cfg, 1)),
        );
        kernel.run_until_exit(pid, SimTime::from_secs(1));
        assert_eq!(
            kernel.vfs().stat("/home/user/doc.txt").unwrap().uid,
            Uid(1000),
            "benign save restored ownership"
        );
        assert_eq!(kernel.defense().denials(), 0, "no false positives");
        // Keep the built-but-unused handles alive to silence lints.
        let _ = handles.kernel.now();
        let _ = &mut handles;
    }
}
