//! The attacker programs.
//!
//! Three implementations from the paper:
//!
//! * [`AttackerV1`] — Figures 2 and 4: spin on `stat(target)`; when the file
//!   turns up root-owned, `unlink` it and `symlink` the privileged file in
//!   its place. Its first `unlink` through a cold libc page costs a
//!   page-fault trap (Section 6.2.1).
//! * [`AttackerV2`] — Figure 9: call `unlink`/`symlink` on **every**
//!   iteration (on a dummy name when the window is closed), so the wrapper
//!   pages are warm before the window opens; only the file name is switched
//!   when the window appears (Section 6.2.2).
//! * [`PipelinedDetector`]/[`PipelinedLinker`] — Section 7: split detection+`unlink` and
//!   `symlink` across two threads on different CPUs; `symlink` overlaps the
//!   truncation tail of `unlink`.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;
use tocttou_os::process::{Action, LogicCtx, ProcessLogic, SyscallRequest, SyscallResult};
use tocttou_sim::dist::sample_standard_normal;
use tocttou_sim::rng::SimRng;
use tocttou_sim::time::SimDuration;

/// Shared attacker timing/path parameters.
///
/// Durations are machine-absolute microsecond values, calibrated per
/// scenario from the paper's measured D values (Table 1: vi SMP D ≈ 41 µs;
/// Table 2: gedit SMP D ≈ 33 µs; Section 6.2: multi-core D ≈ 22 µs).
#[derive(Debug, Clone)]
pub struct AttackerConfig {
    /// The victim's file to watch and replace.
    pub target: Arc<str>,
    /// The privileged file to redirect the victim's `chown` to.
    pub privileged: Arc<str>,
    /// The dummy path (in the attacker's own directory) that v2 unlinks and
    /// symlinks while the window is closed.
    pub dummy: Arc<str>,
    /// User-space computation from a non-detecting `stat` return to the next
    /// `stat` (loop bookkeeping).
    pub loop_gap: SimDuration,
    /// User-space computation from a detecting `stat` return to the `unlink`
    /// call (the ownership check and variable shuffling).
    pub check_gap: SimDuration,
    /// Initial delay before the first iteration (stagger at round start).
    pub start_delay: SimDuration,
    /// Gaussian jitter (stdev, µs) applied to each sampled gap — real user
    /// loops are not cycle-exact.
    pub jitter_us: f64,
}

impl AttackerConfig {
    fn sample_gap(&self, base: SimDuration, rng: &mut SimRng) -> SimDuration {
        if self.jitter_us <= 0.0 {
            return base;
        }
        let jittered = base.as_micros_f64() + self.jitter_us * sample_standard_normal(rng);
        SimDuration::from_micros_f64(jittered)
    }
}

impl AttackerConfig {
    /// Parameters matching the vi SMP attacks of Table 1 (detection period
    /// D ≈ 41 µs at SMP speed).
    pub fn vi_smp(target: impl Into<Arc<str>>, privileged: impl Into<Arc<str>>) -> Self {
        AttackerConfig {
            target: target.into(),
            privileged: privileged.into(),
            dummy: "/home/user/.attack/dummy".into(),
            loop_gap: SimDuration::from_micros(33),
            check_gap: SimDuration::from_micros(2),
            start_delay: SimDuration::from_micros(1),
            jitter_us: 1.0,
        }
    }

    /// Parameters matching the gedit SMP attacks of Table 2 (D ≈ 33 µs).
    pub fn gedit_smp(target: impl Into<Arc<str>>, privileged: impl Into<Arc<str>>) -> Self {
        AttackerConfig {
            target: target.into(),
            privileged: privileged.into(),
            dummy: "/home/user/.attack/dummy".into(),
            loop_gap: SimDuration::from_micros(25),
            check_gap: SimDuration::from_micros(12),
            start_delay: SimDuration::from_micros(1),
            jitter_us: 1.0,
        }
    }

    /// Parameters matching the multi-core attacks of Section 6.2 (the 11 µs
    /// check of Figure 8 for v1; v2 uses [`Self::gedit_multicore_v2`]).
    pub fn gedit_multicore_v1(
        target: impl Into<Arc<str>>,
        privileged: impl Into<Arc<str>>,
    ) -> Self {
        AttackerConfig {
            target: target.into(),
            privileged: privileged.into(),
            dummy: "/home/user/.attack/dummy".into(),
            loop_gap: SimDuration::from_micros(12),
            check_gap: SimDuration::from_micros(11),
            start_delay: SimDuration::from_micros(1),
            jitter_us: 1.0,
        }
    }

    /// Parameters for the improved program of Figure 9 on the multi-core
    /// (2 µs stat→unlink gap — Figure 10).
    pub fn gedit_multicore_v2(
        target: impl Into<Arc<str>>,
        privileged: impl Into<Arc<str>>,
    ) -> Self {
        AttackerConfig {
            target: target.into(),
            privileged: privileged.into(),
            dummy: "/home/user/.attack/dummy".into(),
            loop_gap: SimDuration::from_micros(2),
            check_gap: SimDuration::from_nanos(1_500),
            start_delay: SimDuration::from_micros(1),
            jitter_us: 1.0,
        }
    }
}

/// The paper's window test, shared by every detect-loop attacker (hand
/// written or DSL-compiled): the followed `stat` reports a root-owned
/// regular file.
pub(crate) fn detected(last: Option<&SyscallResult>) -> bool {
    last.and_then(|r| r.stat())
        .is_some_and(|st| st.uid.0 == 0 && st.gid.0 == 0 && !st.is_symlink)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum V1State {
    Start,
    Stat,
    Decide,
    Unlink,
    Symlink,
    Done,
}

/// The attacker of Figures 2/4: detect, then `unlink` + `symlink`.
///
/// Spawn it with `pretouch_libc = false` to reproduce the paper's page-fault
/// behaviour (the first `unlink` traps inside the window).
#[derive(Debug)]
pub struct AttackerV1 {
    cfg: AttackerConfig,
    state: V1State,
    rng: SimRng,
}

impl AttackerV1 {
    /// Creates the attacker; `seed` drives its loop-timing jitter.
    pub fn new(cfg: AttackerConfig, seed: u64) -> Self {
        AttackerV1 {
            cfg,
            state: V1State::Start,
            rng: SimRng::seed_from_u64(seed),
        }
    }
}

impl ProcessLogic for AttackerV1 {
    fn next_action(&mut self, _ctx: &LogicCtx, last: Option<&SyscallResult>) -> Action {
        match self.state {
            V1State::Start => {
                self.state = V1State::Stat;
                Action::Compute(self.cfg.start_delay)
            }
            V1State::Stat => {
                self.state = V1State::Decide;
                Action::Syscall(SyscallRequest::Stat {
                    path: self.cfg.target.clone(),
                })
            }
            V1State::Decide => {
                if detected(last) {
                    self.state = V1State::Unlink;
                    Action::Compute(self.cfg.sample_gap(self.cfg.check_gap, &mut self.rng))
                } else {
                    self.state = V1State::Stat;
                    Action::Compute(self.cfg.sample_gap(self.cfg.loop_gap, &mut self.rng))
                }
            }
            V1State::Unlink => {
                self.state = V1State::Symlink;
                Action::Syscall(SyscallRequest::Unlink {
                    path: self.cfg.target.clone(),
                })
            }
            V1State::Symlink => {
                self.state = V1State::Done;
                Action::Syscall(SyscallRequest::Symlink {
                    target: self.cfg.privileged.clone(),
                    linkpath: self.cfg.target.clone(),
                })
            }
            V1State::Done => Action::Exit,
        }
    }
}

/// The hardlink variant of [`AttackerV1`]: detect, then `unlink` +
/// `link(privileged, target)`.
///
/// Where the symlink attacker plants a *pointer* the victim's `chown`
/// follows, this one plants a second **name of the privileged inode
/// itself** — `stat` on the planted name reports a root-owned regular file
/// (`nlink = 2`), indistinguishable from the victim's own, and the
/// victim's `chown` lands on the privileged inode with no symlink hop at
/// all. Defeats symlink-only countermeasures; detectable through the
/// taxonomy's `link` mutation.
#[derive(Debug)]
pub struct AttackerHardlink {
    cfg: AttackerConfig,
    state: V1State,
    rng: SimRng,
}

impl AttackerHardlink {
    /// Creates the attacker; `seed` drives its loop-timing jitter.
    pub fn new(cfg: AttackerConfig, seed: u64) -> Self {
        AttackerHardlink {
            cfg,
            state: V1State::Start,
            rng: SimRng::seed_from_u64(seed),
        }
    }
}

impl ProcessLogic for AttackerHardlink {
    fn next_action(&mut self, _ctx: &LogicCtx, last: Option<&SyscallResult>) -> Action {
        match self.state {
            V1State::Start => {
                self.state = V1State::Stat;
                Action::Compute(self.cfg.start_delay)
            }
            V1State::Stat => {
                self.state = V1State::Decide;
                Action::Syscall(SyscallRequest::Stat {
                    path: self.cfg.target.clone(),
                })
            }
            V1State::Decide => {
                if detected(last) {
                    self.state = V1State::Unlink;
                    Action::Compute(self.cfg.sample_gap(self.cfg.check_gap, &mut self.rng))
                } else {
                    self.state = V1State::Stat;
                    Action::Compute(self.cfg.sample_gap(self.cfg.loop_gap, &mut self.rng))
                }
            }
            V1State::Unlink => {
                // Reuses the v1 state machine; the `Symlink` state issues
                // `link` here.
                self.state = V1State::Symlink;
                Action::Syscall(SyscallRequest::Unlink {
                    path: self.cfg.target.clone(),
                })
            }
            V1State::Symlink => {
                self.state = V1State::Done;
                Action::Syscall(SyscallRequest::Link {
                    existing: self.cfg.privileged.clone(),
                    linkpath: self.cfg.target.clone(),
                })
            }
            V1State::Done => Action::Exit,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum V2State {
    Start,
    Stat,
    Decide,
    Unlink,
    Symlink,
    AfterSymlink,
}

/// The improved attacker of Figure 9: `unlink`/`symlink` run every
/// iteration (against `dummy` while the window is closed), so the libc
/// wrapper pages are warm when the window opens and only the file name is
/// switched.
#[derive(Debug)]
pub struct AttackerV2 {
    cfg: AttackerConfig,
    state: V2State,
    fname_is_target: bool,
    rng: SimRng,
}

impl AttackerV2 {
    /// Creates the attacker; `seed` drives its loop-timing jitter.
    pub fn new(cfg: AttackerConfig, seed: u64) -> Self {
        AttackerV2 {
            cfg,
            state: V2State::Start,
            fname_is_target: false,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    fn fname(&self) -> Arc<str> {
        if self.fname_is_target {
            self.cfg.target.clone()
        } else {
            self.cfg.dummy.clone()
        }
    }
}

impl ProcessLogic for AttackerV2 {
    fn next_action(&mut self, _ctx: &LogicCtx, last: Option<&SyscallResult>) -> Action {
        match self.state {
            V2State::Start => {
                self.state = V2State::Stat;
                Action::Compute(self.cfg.start_delay)
            }
            V2State::Stat => {
                self.state = V2State::Decide;
                Action::Syscall(SyscallRequest::Stat {
                    path: self.cfg.target.clone(),
                })
            }
            V2State::Decide => {
                self.fname_is_target = detected(last);
                self.state = V2State::Unlink;
                Action::Compute(self.cfg.sample_gap(self.cfg.check_gap, &mut self.rng))
            }
            V2State::Unlink => {
                self.state = V2State::Symlink;
                Action::Syscall(SyscallRequest::Unlink { path: self.fname() })
            }
            V2State::Symlink => {
                self.state = V2State::AfterSymlink;
                Action::Syscall(SyscallRequest::Symlink {
                    target: self.cfg.privileged.clone(),
                    linkpath: self.fname(),
                })
            }
            V2State::AfterSymlink => {
                if self.fname_is_target {
                    Action::Exit
                } else {
                    self.state = V2State::Stat;
                    Action::Compute(self.cfg.sample_gap(self.cfg.loop_gap, &mut self.rng))
                }
            }
        }
    }
}

/// Shared flag between the two threads of the pipelined attacker.
pub type AttackFlag = Rc<Cell<bool>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DetectState {
    Start,
    Stat,
    Decide,
    Unlink,
    Done,
}

/// Thread 1 of the Section 7 pipelined attacker: detection + `unlink`.
///
/// On detection it raises the shared [`AttackFlag`] *before* calling
/// `unlink`, so the symlink thread can enter the kernel concurrently.
pub struct PipelinedDetector {
    cfg: AttackerConfig,
    flag: AttackFlag,
    state: DetectState,
    rng: SimRng,
}

impl PipelinedDetector {
    /// Creates thread 1 with its shared flag; `seed` drives loop jitter.
    pub fn new(cfg: AttackerConfig, flag: AttackFlag, seed: u64) -> Self {
        PipelinedDetector {
            cfg,
            flag,
            state: DetectState::Start,
            rng: SimRng::seed_from_u64(seed),
        }
    }
}

impl ProcessLogic for PipelinedDetector {
    fn next_action(&mut self, _ctx: &LogicCtx, last: Option<&SyscallResult>) -> Action {
        match self.state {
            DetectState::Start => {
                self.state = DetectState::Stat;
                Action::Compute(self.cfg.start_delay)
            }
            DetectState::Stat => {
                self.state = DetectState::Decide;
                Action::Syscall(SyscallRequest::Stat {
                    path: self.cfg.target.clone(),
                })
            }
            DetectState::Decide => {
                if detected(last) {
                    self.flag.set(true);
                    self.state = DetectState::Unlink;
                    Action::Compute(self.cfg.sample_gap(self.cfg.check_gap, &mut self.rng))
                } else {
                    self.state = DetectState::Stat;
                    Action::Compute(self.cfg.sample_gap(self.cfg.loop_gap, &mut self.rng))
                }
            }
            DetectState::Unlink => {
                self.state = DetectState::Done;
                Action::Syscall(SyscallRequest::Unlink {
                    path: self.cfg.target.clone(),
                })
            }
            DetectState::Done => Action::Exit,
        }
    }
}

/// Thread 2 of the pipelined attacker: polls the flag and fires `symlink`.
///
/// If the symlink races ahead of the unlink's detach (the name still
/// exists), the `EEXIST` failure is absorbed and the call retried — the
/// second attempt queues behind the unlink on the directory semaphore and
/// lands immediately after the detach, overlapping the truncation tail.
pub struct PipelinedLinker {
    cfg: AttackerConfig,
    flag: AttackFlag,
    poll_gap: SimDuration,
    fired: bool,
}

impl PipelinedLinker {
    /// Creates thread 2 with the shared flag and its polling period.
    pub fn new(cfg: AttackerConfig, flag: AttackFlag, poll_gap: SimDuration) -> Self {
        PipelinedLinker {
            cfg,
            flag,
            poll_gap,
            fired: false,
        }
    }
}

impl ProcessLogic for PipelinedLinker {
    fn next_action(&mut self, _ctx: &LogicCtx, last: Option<&SyscallResult>) -> Action {
        if self.fired {
            let succeeded = last.is_some_and(|r| r.is_ok());
            if succeeded {
                return Action::Exit;
            }
            // Raced ahead of the detach (EEXIST) — retry shortly.
            self.fired = false;
            return Action::Compute(self.poll_gap);
        }
        if self.flag.get() {
            self.fired = true;
            Action::Syscall(SyscallRequest::Symlink {
                target: self.cfg.privileged.clone(),
                linkpath: self.cfg.target.clone(),
            })
        } else {
            Action::Compute(self.poll_gap)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tocttou_os::ids::{Gid, Uid};
    use tocttou_os::machine::MachineSpec;
    use tocttou_os::prelude::*;
    use tocttou_sim::time::SimTime;

    fn setup() -> Kernel {
        let mut k = Kernel::new(MachineSpec::multicore_pentium_d().quiet(), 11);
        let root = InodeMeta {
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            mode: 0o755,
        };
        let user = InodeMeta {
            uid: Uid(1000),
            gid: Gid(1000),
            mode: 0o755,
        };
        k.vfs_mut().mkdir("/etc", root).unwrap();
        k.vfs_mut().create_file("/etc/passwd", root).unwrap();
        k.vfs_mut().mkdir("/home", root).unwrap();
        k.vfs_mut().mkdir("/home/user", user).unwrap();
        k.vfs_mut().mkdir("/home/user/.attack", user).unwrap();
        k
    }

    fn cfg() -> AttackerConfig {
        AttackerConfig::vi_smp("/home/user/doc", "/etc/passwd")
    }

    #[test]
    fn v1_attacks_an_open_window_immediately() {
        let mut k = setup();
        // The window is already open: the target exists and is root-owned.
        k.vfs_mut()
            .create_file(
                "/home/user/doc",
                InodeMeta {
                    uid: Uid::ROOT,
                    gid: Gid::ROOT,
                    mode: 0o644,
                },
            )
            .unwrap();
        let pid = k.spawn(
            "attacker",
            Uid(1000),
            Gid(1000),
            false,
            Box::new(AttackerV1::new(cfg(), 1)),
        );
        k.run_until_exit(pid, SimTime::from_millis(10));
        let l = k.vfs().lstat("/home/user/doc").unwrap();
        assert!(l.is_symlink, "target replaced by symlink");
        assert_eq!(k.vfs().readlink("/home/user/doc").unwrap(), "/etc/passwd");
        // Exactly one trap: the cold unlink/symlink page.
        let traps = k
            .trace()
            .iter()
            .filter(|r| matches!(r.event, OsEvent::Trap { .. }))
            .count();
        assert!(traps >= 1, "cold attacker trapped");
    }

    #[test]
    fn v1_spins_while_window_closed() {
        let mut k = setup();
        // Target owned by the user: no window.
        k.vfs_mut()
            .create_file(
                "/home/user/doc",
                InodeMeta {
                    uid: Uid(1000),
                    gid: Gid(1000),
                    mode: 0o644,
                },
            )
            .unwrap();
        let pid = k.spawn(
            "attacker",
            Uid(1000),
            Gid(1000),
            false,
            Box::new(AttackerV1::new(cfg(), 1)),
        );
        let outcome = k.run_until_exit(pid, SimTime::from_millis(5));
        assert_eq!(outcome, RunOutcome::TimedOut, "spins forever");
        assert!(!k.vfs().lstat("/home/user/doc").unwrap().is_symlink);
        // Many stats were issued.
        let stats = k
            .trace()
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    OsEvent::SyscallEnter {
                        call: SyscallName::Stat,
                        ..
                    }
                )
            })
            .count();
        assert!(stats > 50, "spinning: {stats} stats");
    }

    #[test]
    fn v1_does_not_attack_an_existing_symlink() {
        // After a successful attack the target is a root-owned... no — a
        // user-owned symlink; but even a root-owned symlink (lstat view)
        // must not retrigger: the check is uid==0 on the *followed* target
        // only when it is a regular file.
        let mut k = setup();
        k.vfs_mut()
            .symlink("/etc/passwd", "/home/user/doc", (Uid(1000), Gid(1000)))
            .unwrap();
        let pid = k.spawn(
            "attacker",
            Uid(1000),
            Gid(1000),
            false,
            Box::new(AttackerV1::new(cfg(), 1)),
        );
        // stat follows the symlink to root-owned /etc/passwd; the paper's
        // program would fire here (stat doesn't see symlinks) — and so does
        // ours, faithfully. It unlinks the symlink and re-links it.
        k.run_until_exit(pid, SimTime::from_millis(5));
        assert_eq!(k.vfs().stat("/etc/passwd").unwrap().uid, Uid::ROOT);
    }

    #[test]
    fn v2_prewarms_on_dummy_and_switches_to_target() {
        let mut k = setup();
        k.vfs_mut()
            .create_file(
                "/home/user/doc",
                InodeMeta {
                    uid: Uid(1000),
                    gid: Gid(1000),
                    mode: 0o644,
                },
            )
            .unwrap();
        let mut c = AttackerConfig::gedit_multicore_v2("/home/user/doc", "/etc/passwd");
        c.dummy = "/home/user/.attack/dummy".into();
        let pid = k.spawn(
            "attacker2",
            Uid(1000),
            Gid(1000),
            false,
            Box::new(AttackerV2::new(c, 2)),
        );
        // Let it idle-loop a while: dummy gets symlinked/unlinked repeatedly.
        k.run_until(
            |k| k.now() >= SimTime::from_micros(500),
            SimTime::from_secs(1),
        );
        let dummy_ops = k
            .trace()
            .iter()
            .filter(|r| {
                matches!(
                    &r.event,
                    OsEvent::SyscallEnter {
                        call: SyscallName::Unlink | SyscallName::Symlink,
                        path: Some(p),
                        ..
                    } if p.contains("dummy")
                )
            })
            .count();
        assert!(dummy_ops >= 4, "dummy churn: {dummy_ops}");

        // Now open the window: chown the target to root.
        k.vfs_mut()
            .chown("/home/user/doc", Uid::ROOT, Gid::ROOT)
            .unwrap();
        k.run_until_exit(pid, SimTime::from_millis(10));
        assert!(k.vfs().lstat("/home/user/doc").unwrap().is_symlink);
        // All traps happened on the dummy path, before the attack: the
        // attack-path unlink was warm. Verify no trap occurs after the
        // window opened.
        let window_open_at = k
            .trace()
            .iter()
            .filter(|r| matches!(r.event, OsEvent::Trap { .. }))
            .map(|r| r.at)
            .max();
        assert!(
            window_open_at.is_none_or(|t| t < SimTime::from_micros(500)),
            "no trap inside the window"
        );
    }

    #[test]
    fn pipelined_symlink_overlaps_unlink_truncation() {
        let mut k = setup();
        // A large root-owned target: unlink's truncation tail is long.
        let ino = k
            .vfs_mut()
            .create_file(
                "/home/user/doc",
                InodeMeta {
                    uid: Uid::ROOT,
                    gid: Gid::ROOT,
                    mode: 0o644,
                },
            )
            .unwrap();
        k.vfs_mut().append(ino, 500 * 1024).unwrap();

        let flag: AttackFlag = Rc::new(Cell::new(false));
        let c = cfg();
        let t1 = k.spawn(
            "detector",
            Uid(1000),
            Gid(1000),
            true,
            Box::new(PipelinedDetector::new(c.clone(), flag.clone(), 3)),
        );
        let t2 = k.spawn(
            "linker",
            Uid(1000),
            Gid(1000),
            true,
            Box::new(PipelinedLinker::new(c, flag, SimDuration::from_micros(1))),
        );
        k.run_until_all_exit(&[t1, t2], SimTime::from_millis(50));

        // Extract event times: symlink must COMMIT before unlink EXITS.
        let mut symlink_commit = None;
        let mut unlink_exit = None;
        for r in k.trace().iter() {
            match &r.event {
                OsEvent::Commit {
                    call: SyscallName::Symlink,
                    ..
                } => symlink_commit = Some(r.at),
                OsEvent::SyscallExit {
                    call: SyscallName::Unlink,
                    ..
                } => unlink_exit = Some(r.at),
                _ => {}
            }
        }
        let (sc, ue) = (symlink_commit.unwrap(), unlink_exit.unwrap());
        assert!(
            sc < ue,
            "pipelined symlink ({sc}) finished before unlink returned ({ue})"
        );
        assert!(k.vfs().lstat("/home/user/doc").unwrap().is_symlink);
    }
}
