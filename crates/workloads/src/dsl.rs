//! The scenario compiler: declarative syscall-trace specs for victims and
//! attackers, lowered onto the existing [`Scenario`] machinery.
//!
//! The paper's taxonomy has 224 `<check, use>` pairs, but hand-writing a
//! `ProcessLogic` state machine per victim does not scale past a handful.
//! This module turns a victim into **data**: a [`ScenarioSpec`] lists the
//! victim's syscall trace ([`Step`]s — sampled think time, jittered
//! compute gaps, guarded calls, chunked write loops), the attacker
//! programs ([`AttackerProfile`] — a detect-or-timer trigger plus a strike
//! trace), the expected taxonomy pair, the extra filesystem state, and the
//! ground-truth success predicate. [`ScenarioSpec::compile`] lowers the
//! spec into a [`Scenario`] whose victim/attacker are interpreted step
//! machines; everything downstream (Monte-Carlo engine, checkpointing,
//! sweeps, detector ground truth) works unchanged.
//!
//! The interpreters replicate the hand-written programs *exactly* — same
//! action sequence, same RNG draw schedule, same jitter formula — so a
//! spec transcribing vi/gedit/hardlink is byte-identical to the bespoke
//! module (trace, detections, `McOutcome`); `tests/dsl_oracle.rs` pins
//! this down. The [`library`] module then mass-produces scenarios across
//! the taxonomy: ~20 lines of spec per new victim.

use crate::attacker::detected;
use crate::scenario::{AttackerSpec, Layout, Scenario, VictimSpec};
use std::sync::Arc;
use tocttou_core::taxonomy::{FsCall, TocttouPair};
use tocttou_os::defense::DefensePolicy;
use tocttou_os::ids::Fd;
use tocttou_os::machine::MachineSpec;
use tocttou_os::process::{Action, LogicCtx, ProcessLogic, SyscallRequest, SyscallResult};
use tocttou_os::vfs::{InodeMeta, Vfs};
use tocttou_sim::dist::{sample_standard_normal, DurationDist};
use tocttou_sim::rng::SimRng;
use tocttou_sim::time::SimDuration;

/// One syscall in a declarative trace, by target path (file descriptors
/// are implicit: the interpreter tracks the most recent fd returned by an
/// `open`/`creat` and feeds it to [`CallSpec::WriteFd`]/[`CallSpec::CloseFd`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallSpec {
    /// `stat(path)` — follows symlinks.
    Stat(Arc<str>),
    /// `lstat(path)` — does not follow a final symlink.
    Lstat(Arc<str>),
    /// `access(path)`.
    Access(Arc<str>),
    /// `open(path)` on an existing file.
    Open(Arc<str>),
    /// `creat(path)` (create/truncate, returns an fd).
    OpenCreate(Arc<str>),
    /// `write(fd, bytes)` through the tracked fd.
    WriteFd {
        /// Byte count.
        bytes: u64,
    },
    /// `close(fd)` of the tracked fd.
    CloseFd,
    /// `unlink(path)`.
    Unlink(Arc<str>),
    /// `mkdir(path)`.
    Mkdir(Arc<str>),
    /// `rename(from, to)`.
    Rename {
        /// Source name.
        from: Arc<str>,
        /// Destination name.
        to: Arc<str>,
    },
    /// `symlink(target, linkpath)`.
    Symlink {
        /// Target stored in the link.
        target: Arc<str>,
        /// Name to bind.
        linkpath: Arc<str>,
    },
    /// `link(existing, linkpath)` — hard link.
    Link {
        /// Existing name of the inode.
        existing: Arc<str>,
        /// Name to bind.
        linkpath: Arc<str>,
    },
    /// `chmod(path, mode)`.
    Chmod {
        /// Path (symlinks followed).
        path: Arc<str>,
        /// New mode.
        mode: u32,
    },
    /// `chown(path, uid, gid)`.
    Chown {
        /// Path (symlinks followed).
        path: Arc<str>,
        /// New owner uid.
        uid: u32,
        /// New owner gid.
        gid: u32,
    },
}

impl CallSpec {
    /// The taxonomy call this spec lowers to, when it has one
    /// (`WriteFd`/`CloseFd` act on descriptors, not names).
    pub fn fs_call(&self) -> Option<FsCall> {
        Some(match self {
            CallSpec::Stat(_) => FsCall::Stat,
            CallSpec::Lstat(_) => FsCall::Lstat,
            CallSpec::Access(_) => FsCall::Access,
            CallSpec::Open(_) => FsCall::Open,
            CallSpec::OpenCreate(_) => FsCall::Creat,
            CallSpec::Unlink(_) => FsCall::Unlink,
            CallSpec::Mkdir(_) => FsCall::Mkdir,
            CallSpec::Rename { .. } => FsCall::Rename,
            CallSpec::Symlink { .. } => FsCall::Symlink,
            CallSpec::Link { .. } => FsCall::Link,
            CallSpec::Chmod { .. } => FsCall::Chmod,
            CallSpec::Chown { .. } => FsCall::Chown,
            CallSpec::WriteFd { .. } | CallSpec::CloseFd => return None,
        })
    }

    /// The name the kernel's race machinery keys this call on: the single
    /// path argument, the *destination* of a `rename`, and the bound name
    /// of a `symlink`/`link`. `None` for fd-relative calls.
    pub fn primary_path(&self) -> Option<&Arc<str>> {
        match self {
            CallSpec::Stat(p)
            | CallSpec::Lstat(p)
            | CallSpec::Access(p)
            | CallSpec::Open(p)
            | CallSpec::OpenCreate(p)
            | CallSpec::Unlink(p)
            | CallSpec::Mkdir(p) => Some(p),
            CallSpec::Rename { to, .. } => Some(to),
            CallSpec::Symlink { linkpath, .. } | CallSpec::Link { linkpath, .. } => Some(linkpath),
            CallSpec::Chmod { path, .. } | CallSpec::Chown { path, .. } => Some(path),
            CallSpec::WriteFd { .. } | CallSpec::CloseFd => None,
        }
    }

    /// Lowers the call to a kernel request; `fd` is the interpreter's
    /// tracked descriptor (required by `WriteFd`/`CloseFd`).
    fn request(&self, fd: Option<Fd>) -> SyscallRequest {
        use tocttou_os::ids::{Gid, Uid};
        match self {
            CallSpec::Stat(p) => SyscallRequest::Stat { path: p.clone() },
            CallSpec::Lstat(p) => SyscallRequest::Lstat { path: p.clone() },
            CallSpec::Access(p) => SyscallRequest::Access { path: p.clone() },
            CallSpec::Open(p) => SyscallRequest::Open { path: p.clone() },
            CallSpec::OpenCreate(p) => SyscallRequest::OpenCreate { path: p.clone() },
            CallSpec::WriteFd { bytes } => SyscallRequest::Write {
                fd: fd.expect("WriteFd needs a prior open/creat in the trace"),
                bytes: *bytes,
            },
            CallSpec::CloseFd => SyscallRequest::Close {
                fd: fd.expect("CloseFd needs a prior open/creat in the trace"),
            },
            CallSpec::Unlink(p) => SyscallRequest::Unlink { path: p.clone() },
            CallSpec::Mkdir(p) => SyscallRequest::Mkdir { path: p.clone() },
            CallSpec::Rename { from, to } => SyscallRequest::Rename {
                from: from.clone(),
                to: to.clone(),
            },
            CallSpec::Symlink { target, linkpath } => SyscallRequest::Symlink {
                target: target.clone(),
                linkpath: linkpath.clone(),
            },
            CallSpec::Link { existing, linkpath } => SyscallRequest::Link {
                existing: existing.clone(),
                linkpath: linkpath.clone(),
            },
            CallSpec::Chmod { path, mode } => SyscallRequest::Chmod {
                path: path.clone(),
                mode: *mode,
            },
            CallSpec::Chown { path, uid, gid } => SyscallRequest::Chown {
                path: path.clone(),
                uid: Uid(*uid),
                gid: Gid(*gid),
            },
        }
    }
}

/// A guard evaluated on a call's result; failing the guard makes the
/// victim abort its trace (exit without issuing the remaining steps).
///
/// This models the defensive check real victims perform — sendmail's
/// "abort if lstat shows a symlink", a cron job's "only touch files the
/// user owns" — and is what makes the ground truth exact: an attacker who
/// strikes *before* the check is seen by the check itself, so the victim
/// backs off and the round counts as neither a success nor a detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// No guard: proceed regardless of the result.
    Any,
    /// Proceed only if the (followed) stat result reports this owner uid.
    UidIs(u32),
    /// Proceed only if the stat result exists and is not a symlink
    /// (meaningful after [`CallSpec::Lstat`]).
    NotSymlink,
    /// Proceed only if the call succeeded.
    Succeeds,
}

impl Expect {
    fn holds(self, last: Option<&SyscallResult>) -> bool {
        match self {
            Expect::Any => true,
            Expect::UidIs(uid) => last
                .and_then(|r| r.stat())
                .is_some_and(|st| st.uid.0 == uid),
            Expect::NotSymlink => last.and_then(|r| r.stat()).is_some_and(|st| !st.is_symlink),
            Expect::Succeeds => last.is_some_and(|r| r.is_ok()),
        }
    }
}

/// One step of a victim's declarative trace.
#[derive(Debug, Clone)]
pub enum Step {
    /// Sampled user-space computation (the editing prologue); draws once
    /// from the distribution.
    Think(DurationDist),
    /// Fixed compute gap with Gaussian jitter — exactly the hand-written
    /// victims' `gap()`: no RNG draw when `jitter_us <= 0`, one
    /// standard-normal draw otherwise.
    Gap {
        /// Base duration.
        base: SimDuration,
        /// Jitter stdev in microseconds.
        jitter_us: f64,
    },
    /// A syscall, optionally guarded by an [`Expect`] on its result.
    Call {
        /// The call.
        call: CallSpec,
        /// Guard on the result; `Expect::Any` for unguarded calls.
        expect: Expect,
    },
    /// A chunked write loop through the tracked fd (vi/gedit's buffer
    /// flush): `bytes` total in `chunk`-sized calls.
    WriteLoop {
        /// Total bytes.
        bytes: u64,
        /// Per-call granularity.
        chunk: u64,
    },
}

impl Step {
    /// An unguarded call step.
    pub fn call(call: CallSpec) -> Step {
        Step::Call {
            call,
            expect: Expect::Any,
        }
    }

    /// A guarded call step.
    pub fn guarded(call: CallSpec, expect: Expect) -> Step {
        Step::Call { call, expect }
    }

    /// A jittered gap of `us` microseconds.
    pub fn gap_us(us: u64, jitter_us: f64) -> Step {
        Step::Gap {
            base: SimDuration::from_micros(us),
            jitter_us,
        }
    }
}

/// The hand-written victims' jitter formula, shared verbatim by the
/// interpreters (`ViSave::gap` / `GeditSave::gap` /
/// `AttackerConfig::sample_gap` compute exactly this).
fn jittered(base: SimDuration, jitter_us: f64, rng: &mut SimRng) -> SimDuration {
    if jitter_us <= 0.0 {
        return base;
    }
    let us = base.as_micros_f64() + jitter_us * sample_standard_normal(rng);
    SimDuration::from_micros_f64(us)
}

/// How a compiled attacker decides when to strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Spin on `stat(watch)` until it reports a root-owned regular file —
    /// the paper's detection loop (`AttackerV1`'s trigger). Use when the
    /// victim's check has an observable effect on the watched path (a
    /// root `creat`, a rename into place).
    RootOwned,
    /// No detection loop: wait `start_delay`, one jittered `check_gap`,
    /// then strike blind. Use against stat-style checks that leave no
    /// observable trace; round-to-round spread comes from the victim's
    /// sampled prologue.
    Timer,
}

/// A compiled attacker: trigger plus strike trace.
#[derive(Debug, Clone)]
pub struct AttackerProfile {
    /// Process name (shows up in traces).
    pub name: String,
    /// Spawn with warm libc pages? (`false` reproduces the paper's v1
    /// page-fault behaviour.)
    pub pretouch: bool,
    /// The path the detection loop stats ([`Trigger::RootOwned`]).
    pub watch: Arc<str>,
    /// When to strike.
    pub trigger: Trigger,
    /// The strike: issued back-to-back once triggered.
    pub strike: Arc<[CallSpec]>,
    /// Delay before the first iteration (round-start stagger).
    pub start_delay: SimDuration,
    /// Non-detecting-`stat` → next-`stat` computation.
    pub loop_gap: SimDuration,
    /// Detecting-`stat` → strike computation.
    pub check_gap: SimDuration,
    /// Gaussian jitter (stdev, µs) on each sampled gap.
    pub jitter_us: f64,
}

impl AttackerProfile {
    /// The classic symlink-swap strike: `unlink(target)` then
    /// `symlink(privileged, target)`.
    pub fn symlink_strike(target: &Arc<str>, privileged: &Arc<str>) -> Arc<[CallSpec]> {
        Arc::from(vec![
            CallSpec::Unlink(target.clone()),
            CallSpec::Symlink {
                target: privileged.clone(),
                linkpath: target.clone(),
            },
        ])
    }

    /// The hardlink-swap strike: `unlink(target)` then
    /// `link(privileged, target)`.
    pub fn hardlink_strike(target: &Arc<str>, privileged: &Arc<str>) -> Arc<[CallSpec]> {
        Arc::from(vec![
            CallSpec::Unlink(target.clone()),
            CallSpec::Link {
                existing: privileged.clone(),
                linkpath: target.clone(),
            },
        ])
    }
}

/// Ground-truth success predicate, evaluated on the final VFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuccessRule {
    /// The privileged file ended up owned by the attacker (the paper's
    /// criterion for `chown`-use attacks).
    AttackerOwnsPrivileged,
    /// The privileged file carries this mode (for `chmod`-use attacks:
    /// the victim's chmod landed on the privileged inode).
    PrivilegedModeIs(u32),
    /// The privileged file grew to at least this many bytes (for
    /// `open`-use attacks: the victim's writes went through a descriptor
    /// resolved to the privileged inode).
    PrivilegedGrewBy(u64),
}

impl SuccessRule {
    /// Evaluates the predicate against the end-of-round filesystem.
    pub fn eval(self, vfs: &Vfs, layout: &Layout) -> bool {
        let passwd = vfs.stat(&layout.passwd).expect("passwd exists");
        match self {
            SuccessRule::AttackerOwnsPrivileged => passwd.uid == layout.attacker.0,
            SuccessRule::PrivilegedModeIs(mode) => passwd.mode == mode,
            SuccessRule::PrivilegedGrewBy(bytes) => passwd.size >= bytes,
        }
    }
}

/// An extra filesystem entry a spec needs beyond the standard [`Layout`]
/// (spool files, package trees, …). Created by `populate_doc` *after* the
/// document so the sweep engine's base-image fork invariant holds.
#[derive(Debug, Clone)]
pub struct FileSpec {
    /// Absolute path.
    pub path: String,
    /// Owned by the attacker (`true`) or root (`false`).
    pub attacker_owned: bool,
    /// Mode bits.
    pub mode: u32,
    /// File (with size) or directory.
    pub node: ExtraNode,
}

/// What an extra [`FileSpec`] entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtraNode {
    /// A regular file of the given size.
    File {
        /// Initial size in bytes.
        size: u64,
    },
    /// A directory.
    Dir,
}

impl FileSpec {
    /// An attacker-owned regular file.
    pub fn user_file(path: impl Into<String>, size: u64) -> FileSpec {
        FileSpec {
            path: path.into(),
            attacker_owned: true,
            mode: 0o644,
            node: ExtraNode::File { size },
        }
    }

    /// An attacker-owned directory.
    pub fn user_dir(path: impl Into<String>) -> FileSpec {
        FileSpec {
            path: path.into(),
            attacker_owned: true,
            mode: 0o755,
            node: ExtraNode::Dir,
        }
    }
}

/// A declarative scenario: victim trace, attackers, filesystem, taxonomy
/// pair and ground truth — everything [`ScenarioSpec::compile`] needs to
/// produce a runnable [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports).
    pub name: String,
    /// Machine profile.
    pub machine: MachineSpec,
    /// Filesystem layout.
    pub layout: Layout,
    /// The `<check, use>` pair this scenario exercises (the pair the
    /// detector is expected to report).
    pub pair: TocttouPair,
    /// Victim process name.
    pub victim_name: String,
    /// The victim's trace.
    pub steps: Vec<Step>,
    /// Pre-existing document size (the layout's `doc`).
    pub doc_size: u64,
    /// Extra filesystem entries beyond the standard layout.
    pub extra_files: Vec<FileSpec>,
    /// The attackers (one per process; more than one models interference).
    pub attackers: Vec<AttackerProfile>,
    /// Ground-truth success predicate.
    pub success: SuccessRule,
    /// Wall-clock cap per round.
    pub max_round: SimDuration,
}

impl ScenarioSpec {
    /// Lowers the spec into a [`Scenario`] running interpreted step
    /// machines. Compilation is pure data shuffling — deterministic, no
    /// RNG — so compiling twice yields behaviourally identical scenarios.
    pub fn compile(self) -> Scenario {
        Scenario {
            name: self.name,
            machine: self.machine,
            victim: VictimSpec::Compiled(CompiledVictim {
                name: self.victim_name,
                steps: self.steps.into(),
                doc_size: self.doc_size,
                pair: self.pair,
                extra_files: self.extra_files.into(),
                success: self.success,
            }),
            attacker: AttackerSpec::Compiled(self.attackers),
            layout: self.layout,
            max_round: self.max_round,
            defense: DefensePolicy::Off,
        }
    }
}

/// A compiled victim, embedded in [`VictimSpec::Compiled`]. Cheap to
/// clone (the trace is shared).
#[derive(Debug, Clone)]
pub struct CompiledVictim {
    /// Process name.
    pub name: String,
    /// The trace.
    pub steps: Arc<[Step]>,
    /// Pre-existing document size.
    pub doc_size: u64,
    /// Declared taxonomy pair.
    pub pair: TocttouPair,
    /// Extra filesystem entries.
    pub extra_files: Arc<[FileSpec]>,
    /// Ground-truth predicate.
    pub success: SuccessRule,
}

/// The ground-truth race window a compiled victim's trace declares: which
/// step performs the taxonomy pair's check, which performs its use, and
/// the name both act on. Derived statically from the [`Step`] list — no
/// simulation — so the forensics pipeline can be validated against what
/// the workload *intends*, not just what the kernel observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowAnnotation {
    /// The `<check, use>` pair the window realizes.
    pub pair: TocttouPair,
    /// The name both calls act on.
    pub path: Arc<str>,
    /// Index (into the victim's steps) of the check call.
    pub check_step: usize,
    /// Index of the first matching use call after the check.
    pub use_step: usize,
}

impl CompiledVictim {
    /// Locates the declared pair's check→use window in the trace: the
    /// first step lowering to `pair.use_call()` that is preceded by a
    /// step lowering to `pair.check()` on the same path; the *last* such
    /// check wins, mirroring the kernel rule that a re-check refreshes
    /// the window. `None` when the trace never realizes its declared pair
    /// (a spec bug worth surfacing; the conformance tests assert every
    /// library entry is `Some`).
    pub fn window_annotation(&self) -> Option<WindowAnnotation> {
        let calls = self.steps.iter().enumerate().filter_map(|(i, s)| match s {
            Step::Call { call, .. } => Some((i, call)),
            _ => None,
        });
        // Last check step seen per path, in trace order.
        let mut checks: Vec<(usize, &Arc<str>)> = Vec::new();
        for (i, call) in calls {
            if (self.pair.check() != self.pair.use_call() || checks.is_empty())
                && call.fs_call() == Some(self.pair.check())
            {
                if let Some(path) = call.primary_path() {
                    match checks.iter_mut().find(|(_, p)| p.as_ref() == path.as_ref()) {
                        Some(slot) => slot.0 = i,
                        None => checks.push((i, path)),
                    }
                    continue;
                }
            }
            if call.fs_call() == Some(self.pair.use_call()) {
                if let Some(path) = call.primary_path() {
                    if let Some(&(check_step, p)) =
                        checks.iter().find(|(_, p)| p.as_ref() == path.as_ref())
                    {
                        return Some(WindowAnnotation {
                            pair: self.pair,
                            path: p.clone(),
                            check_step,
                            use_step: i,
                        });
                    }
                }
            }
        }
        None
    }

    /// Creates the interpreter for one round.
    pub fn logic(&self, seed: u64) -> DslVictim {
        DslVictim {
            steps: self.steps.clone(),
            pc: 0,
            written: 0,
            fd: None,
            pending: Expect::Any,
            aborted: false,
            rng: SimRng::seed_from_u64(seed),
        }
    }
}

/// The victim-trace interpreter: walks the [`Step`] list, tracking the
/// last returned fd and evaluating guards; mirrors the hand-written
/// victims' action/draw schedule exactly.
#[derive(Debug)]
pub struct DslVictim {
    steps: Arc<[Step]>,
    pc: usize,
    written: u64,
    fd: Option<Fd>,
    pending: Expect,
    aborted: bool,
    rng: SimRng,
}

impl ProcessLogic for DslVictim {
    fn next_action(&mut self, _ctx: &LogicCtx, last: Option<&SyscallResult>) -> Action {
        if let Some(fd) = last.and_then(|r| r.fd()) {
            self.fd = Some(fd);
        }
        let guard = std::mem::replace(&mut self.pending, Expect::Any);
        if !guard.holds(last) {
            // The defensive check failed: back off without touching
            // anything else (no use call, no success).
            self.aborted = true;
        }
        if self.aborted {
            return Action::Exit;
        }
        loop {
            let Some(step) = self.steps.get(self.pc) else {
                return Action::Exit;
            };
            match step {
                Step::Think(dist) => {
                    self.pc += 1;
                    return Action::Compute(dist.sample(&mut self.rng));
                }
                Step::Gap { base, jitter_us } => {
                    self.pc += 1;
                    let g = jittered(*base, *jitter_us, &mut self.rng);
                    return Action::Compute(g);
                }
                Step::Call { call, expect } => {
                    self.pc += 1;
                    self.pending = *expect;
                    return Action::Syscall(call.request(self.fd));
                }
                Step::WriteLoop { bytes, chunk } => {
                    if self.written >= *bytes {
                        self.written = 0;
                        self.pc += 1;
                        continue;
                    }
                    let remaining = *bytes - self.written;
                    let n = remaining.min((*chunk).max(1));
                    self.written += n;
                    return Action::Syscall(SyscallRequest::Write {
                        fd: self.fd.expect("write loop needs a prior open/creat"),
                        bytes: n,
                    });
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AtkState {
    Start,
    Stat,
    Decide,
    TimerGap,
    Strike(usize),
}

/// The compiled-attacker interpreter: trigger loop, then the strike
/// trace, then exit. With [`Trigger::RootOwned`] its action/draw schedule
/// is identical to `AttackerV1`/`AttackerHardlink`.
#[derive(Debug)]
pub struct DslAttacker {
    prof: AttackerProfile,
    state: AtkState,
    rng: SimRng,
}

impl DslAttacker {
    /// Creates the attacker; `seed` drives its loop-timing jitter.
    pub fn new(prof: AttackerProfile, seed: u64) -> Self {
        DslAttacker {
            prof,
            state: AtkState::Start,
            rng: SimRng::seed_from_u64(seed),
        }
    }
}

impl ProcessLogic for DslAttacker {
    fn next_action(&mut self, _ctx: &LogicCtx, last: Option<&SyscallResult>) -> Action {
        match self.state {
            AtkState::Start => {
                self.state = match self.prof.trigger {
                    Trigger::RootOwned => AtkState::Stat,
                    Trigger::Timer => AtkState::TimerGap,
                };
                Action::Compute(self.prof.start_delay)
            }
            AtkState::Stat => {
                self.state = AtkState::Decide;
                Action::Syscall(SyscallRequest::Stat {
                    path: self.prof.watch.clone(),
                })
            }
            AtkState::Decide => {
                if detected(last) {
                    self.state = AtkState::Strike(0);
                    Action::Compute(jittered(
                        self.prof.check_gap,
                        self.prof.jitter_us,
                        &mut self.rng,
                    ))
                } else {
                    self.state = AtkState::Stat;
                    Action::Compute(jittered(
                        self.prof.loop_gap,
                        self.prof.jitter_us,
                        &mut self.rng,
                    ))
                }
            }
            AtkState::TimerGap => {
                self.state = AtkState::Strike(0);
                Action::Compute(jittered(
                    self.prof.check_gap,
                    self.prof.jitter_us,
                    &mut self.rng,
                ))
            }
            AtkState::Strike(i) => match self.prof.strike.get(i) {
                Some(call) => {
                    self.state = AtkState::Strike(i + 1);
                    Action::Syscall(call.request(None))
                }
                None => Action::Exit,
            },
        }
    }
}

/// Populates a compiled victim's extra filesystem entries (called by the
/// scenario build paths after the document is created).
pub(crate) fn populate_extras(victim: &CompiledVictim, layout: &Layout, vfs: &mut Vfs) {
    use tocttou_os::ids::{Gid, Uid};
    for f in victim.extra_files.iter() {
        let (uid, gid) = if f.attacker_owned {
            layout.attacker
        } else {
            (Uid::ROOT, Gid::ROOT)
        };
        let meta = InodeMeta {
            uid,
            gid,
            mode: f.mode,
        };
        match f.node {
            ExtraNode::Dir => {
                vfs.mkdir(&f.path, meta).expect("extra dir");
            }
            ExtraNode::File { size } => {
                let ino = vfs.create_file(&f.path, meta).expect("extra file");
                vfs.append(ino, size).expect("extra file content");
            }
        }
    }
}

pub mod library;

#[cfg(test)]
mod tests {
    use super::*;
    use tocttou_os::ids::Uid;

    #[test]
    fn compile_produces_a_runnable_scenario() {
        let s = library::tmp_logrotate(4096).compile();
        let r = s.run_round(7);
        assert!(r.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn compile_is_deterministic() {
        for seed in [1u64, 99, 4242] {
            let a = library::maildrop(2048).compile().run_round(seed);
            let b = library::maildrop(2048).compile().run_round(seed);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn guard_aborts_on_failed_check() {
        // A victim whose guard expects a root-owned file, stat'ing an
        // attacker-owned one: it must abort before the chown.
        let layout = Layout::default();
        let doc: Arc<str> = layout.doc.as_str().into();
        let spec = ScenarioSpec {
            name: "guard-abort".into(),
            machine: MachineSpec::smp_xeon(),
            layout: layout.clone(),
            pair: TocttouPair::new(
                tocttou_core::taxonomy::FsCall::Stat,
                tocttou_core::taxonomy::FsCall::Chown,
            )
            .unwrap(),
            victim_name: "guarded".into(),
            steps: vec![
                Step::guarded(CallSpec::Stat(doc.clone()), Expect::UidIs(0)),
                Step::gap_us(10, 0.0),
                Step::call(CallSpec::Chown {
                    path: doc.clone(),
                    uid: 0,
                    gid: 0,
                }),
            ],
            doc_size: 64,
            extra_files: vec![],
            attackers: vec![],
            success: SuccessRule::AttackerOwnsPrivileged,
            max_round: SimDuration::from_secs(1),
        };
        let scenario = spec.compile();
        let (r, handles) = scenario.run_traced(3);
        assert!(r.victim_exited, "abort still exits cleanly");
        // The doc is attacker-owned, so the guard failed and the chown
        // never ran: the doc still belongs to the attacker.
        let st = handles.kernel.vfs().stat(&scenario.layout.doc).unwrap();
        assert_eq!(st.uid, Uid(1000), "guard stopped the trace");
    }

    #[test]
    fn call_specs_map_to_taxonomy_calls_and_paths() {
        let p: Arc<str> = "/tmp/x".into();
        let q: Arc<str> = "/tmp/y".into();
        assert_eq!(CallSpec::Stat(p.clone()).fs_call(), Some(FsCall::Stat));
        assert_eq!(
            CallSpec::OpenCreate(p.clone()).fs_call(),
            Some(FsCall::Creat)
        );
        assert_eq!(CallSpec::WriteFd { bytes: 1 }.fs_call(), None);
        assert_eq!(CallSpec::CloseFd.primary_path(), None);
        let rename = CallSpec::Rename {
            from: p.clone(),
            to: q.clone(),
        };
        assert_eq!(rename.fs_call(), Some(FsCall::Rename));
        assert_eq!(
            rename.primary_path().map(Arc::as_ref),
            Some("/tmp/y"),
            "rename windows key on the destination name"
        );
        let link = CallSpec::Symlink {
            target: p.clone(),
            linkpath: q.clone(),
        };
        assert_eq!(link.primary_path().map(Arc::as_ref), Some("/tmp/y"));
    }

    #[test]
    fn every_library_victim_annotates_its_declared_window() {
        for (pair, scenario) in library::taxonomy_library(None) {
            let VictimSpec::Compiled(victim) = &scenario.victim else {
                panic!("library compiles to compiled victims");
            };
            let ann = victim.window_annotation().unwrap_or_else(|| {
                panic!(
                    "{}: trace never realizes its declared pair {pair}",
                    scenario.name
                )
            });
            assert_eq!(ann.pair, victim.pair, "{}", scenario.name);
            assert!(
                ann.check_step < ann.use_step,
                "{}: check must precede use",
                scenario.name
            );
        }
    }

    #[test]
    fn library_pairs_are_distinct_and_at_least_eight() {
        let mut pairs: Vec<String> = library::taxonomy_library(None)
            .iter()
            .map(|(pair, _)| format!("{pair}"))
            .collect();
        pairs.sort();
        pairs.dedup();
        assert!(
            pairs.len() >= 8,
            "library must span >= 8 distinct pairs, got {pairs:?}"
        );
    }
}
