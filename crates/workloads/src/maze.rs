//! Filesystem-maze victim slowdown (the paper's Section 1, citing Borisov
//! et al., "Fixing Races for Fun and Profit: How to Abuse atime").
//!
//! Before multiprocessors, attackers *stretched the victim's window*
//! instead of speeding themselves up: extremely long pathnames (directory
//! "mazes") make every resolution of the victim's file slow, growing the
//! window — and with it the uniprocessor suspension probability. This
//! module builds maze layouts and scenario variants that quantify the
//! effect with the same Monte-Carlo machinery as the paper's experiments.

use crate::scenario::{Scenario, VictimSpec};
use tocttou_os::ids::{Gid, Uid};
use tocttou_os::kernel::Kernel;
use tocttou_os::vfs::InodeMeta;

/// A maze layout: the document lives `depth` directories below the user's
/// home, so every path touching it resolves `depth + 3` components.
#[derive(Debug, Clone)]
pub struct Maze {
    /// Directory-chain length.
    pub depth: usize,
    /// The deep document path.
    pub doc: String,
    /// The deep backup path.
    pub backup: String,
}

impl Maze {
    /// Plans a maze of the given depth under `/home/user`.
    pub fn new(depth: usize) -> Self {
        let mut dir = String::from("/home/user");
        for i in 0..depth {
            dir.push_str(&format!("/m{i}"));
        }
        Maze {
            depth,
            doc: format!("{dir}/doc.txt"),
            backup: format!("{dir}/doc.txt~"),
        }
    }

    /// Creates the maze's directory chain in a kernel's filesystem
    /// (expects `/home/user` to exist).
    ///
    /// # Panics
    ///
    /// Panics if the layout cannot be created (programming error in setup).
    pub fn dig(&self, kernel: &mut Kernel, owner: (Uid, Gid)) {
        let meta = InodeMeta {
            uid: owner.0,
            gid: owner.1,
            mode: 0o755,
        };
        let mut dir = String::from("/home/user");
        for i in 0..self.depth {
            dir.push_str(&format!("/m{i}"));
            kernel.vfs_mut().mkdir(&dir, meta).expect("maze digging");
        }
    }
}

/// A vi uniprocessor scenario whose document sits at the bottom of a maze
/// of the given depth, with per-component resolution cost enabled.
///
/// The attacker watches the same deep path, so its detection loop also
/// slows down — but on the uniprocessor that is irrelevant (it only runs
/// while the victim is suspended), which is exactly why the maze was the
/// pre-multiprocessor weapon of choice.
pub fn vi_uniprocessor_maze(file_size: u64, depth: usize, per_component_us: f64) -> Scenario {
    let maze = Maze::new(depth);
    let mut scenario = Scenario::vi_uniprocessor(file_size);
    scenario.name = format!("vi-uniprocessor-maze{}-{}B", depth, file_size);
    scenario.machine.costs.resolve_per_component_us = per_component_us;
    scenario.layout.doc = maze.doc.clone();
    scenario.layout.backup = maze.backup.clone();
    if let VictimSpec::Vi(cfg) = &mut scenario.victim {
        cfg.wfname = maze.doc.as_str().into();
        cfg.backup = maze.backup.as_str().into();
    }
    if let crate::scenario::AttackerSpec::V1(cfg) = &mut scenario.attacker {
        cfg.target = maze.doc.as_str().into();
    }
    scenario
}

impl Scenario {
    /// Digs the maze directories for scenarios produced by
    /// [`vi_uniprocessor_maze`]. Must be called on freshly built rounds;
    /// [`Scenario::build`] handles the standard layout but not maze chains,
    /// so maze experiments go through [`run_maze_round`].
    fn maze_depth(&self) -> usize {
        self.layout
            .doc
            .split('/')
            .filter(|c| c.starts_with('m') && c[1..].chars().all(|ch| ch.is_ascii_digit()))
            .count()
    }
}

/// Runs one round of a maze scenario (digs the chain, then runs normally).
pub fn run_maze_round(scenario: &Scenario, seed: u64) -> crate::scenario::RoundResult {
    let depth = scenario.maze_depth();
    let mut handles = scenario.build_with(seed, false, |kernel| {
        Maze::new(depth).dig(kernel, (Uid(1000), Gid(1000)));
    });
    scenario.finish_round(&mut handles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tocttou_core::stats::SuccessCounter;

    #[test]
    fn maze_paths_have_expected_depth() {
        let m = Maze::new(4);
        assert_eq!(m.doc, "/home/user/m0/m1/m2/m3/doc.txt");
        assert_eq!(m.doc.split('/').filter(|c| !c.is_empty()).count(), 7);
        let m0 = Maze::new(0);
        assert_eq!(m0.doc, "/home/user/doc.txt");
    }

    #[test]
    fn maze_rounds_run_and_window_grows() {
        // Borisov-style mazes added whole-disk-seek latencies per component;
        // 5 µs/component over an 800-deep chain puts ~8 ms of resolution
        // work on the victim's in-window chown, dwarfing the flat window
        // (~1.8 ms at 100 KB) — so the uniprocessor suspension probability
        // rises several-fold.
        let flat = vi_uniprocessor_maze(100 * 1024, 0, 5.0);
        let deep = vi_uniprocessor_maze(100 * 1024, 800, 5.0);
        let mut flat_rate = SuccessCounter::new();
        let mut deep_rate = SuccessCounter::new();
        for seed in 0..100 {
            flat_rate.record(run_maze_round(&flat, seed).success);
            deep_rate.record(run_maze_round(&deep, seed).success);
        }
        assert!(
            deep_rate.rate() > flat_rate.rate() + 0.04,
            "maze amplification: flat {} vs deep {}",
            flat_rate,
            deep_rate
        );
    }

    #[test]
    fn maze_round_completes_with_correct_outcome_bookkeeping() {
        let s = vi_uniprocessor_maze(20 * 1024, 50, 0.5);
        let r = run_maze_round(&s, 7);
        assert!(r.victim_exited, "deep save still completes");
    }
}
