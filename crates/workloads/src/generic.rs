//! A generic `<check, use>` victim, parameterized by a [`TocttouPair`] from
//! the taxonomy.
//!
//! The paper notes there are "many kinds of TOCTTOU vulnerabilities (e.g.,
//! 224 for Linux)" beyond vi and gedit. This module turns any expressible
//! pair into a runnable victim — check call, computation window, use call —
//! so the whole taxonomy can be swept against the attacker on any machine
//! profile.
//!
//! Not every call of the taxonomy is materialized by the simulator's
//! syscall surface (e.g. `execve`, `mount`); [`GenericVictim::supports`]
//! reports which pairs are runnable. The sweep experiments report coverage
//! explicitly rather than silently skipping.

use std::sync::Arc;
use tocttou_core::taxonomy::{FsCall, TocttouPair};
use tocttou_os::ids::{Gid, Uid};
use tocttou_os::process::{Action, LogicCtx, ProcessLogic, SyscallRequest, SyscallResult};
use tocttou_sim::dist::DurationDist;
use tocttou_sim::rng::SimRng;
use tocttou_sim::time::SimDuration;

/// Configuration for a [`GenericVictim`].
#[derive(Debug, Clone)]
pub struct GenericConfig {
    /// The pair to exercise.
    pub pair: TocttouPair,
    /// The file name checked and used.
    pub path: Arc<str>,
    /// A secondary name (rename/link destinations).
    pub aux_path: Arc<str>,
    /// Computation between check and use — the vulnerability window.
    pub window: SimDuration,
    /// Owner handed over by ownership-changing use calls.
    pub owner: (Uid, Gid),
    /// Idle time before the sequence starts.
    pub prologue: DurationDist,
}

impl GenericConfig {
    /// A window of `window_us` µs over `path`.
    pub fn new(pair: TocttouPair, path: impl Into<Arc<str>>, window_us: f64) -> Self {
        let path = path.into();
        GenericConfig {
            aux_path: format!("{path}.aux").into(),
            pair,
            path,
            window: SimDuration::from_micros_f64(window_us),
            owner: (Uid(1000), Gid(1000)),
            prologue: DurationDist::uniform_us(0.0, 100.0),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GenState {
    Prologue,
    Check,
    Window,
    Use,
    Done,
}

/// A victim that performs `check(path)`, computes for the window length,
/// then `use(path)` — the minimal TOCTTOU-vulnerable program for the pair.
#[derive(Debug)]
pub struct GenericVictim {
    cfg: GenericConfig,
    state: GenState,
    rng: SimRng,
}

impl GenericVictim {
    /// Creates the victim; `seed` randomizes the prologue.
    pub fn new(cfg: GenericConfig, seed: u64) -> Self {
        GenericVictim {
            cfg,
            state: GenState::Prologue,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Whether both calls of `pair` are expressible on the simulator's
    /// syscall surface.
    pub fn supports(pair: TocttouPair) -> bool {
        call_as_check(pair.check(), &Arc::from("/x"), &Arc::from("/y")).is_some()
            && call_as_use(
                pair.use_call(),
                &Arc::from("/x"),
                &Arc::from("/y"),
                (Uid(0), Gid(0)),
            )
            .is_some()
    }

    /// Every taxonomy pair the simulator can run.
    pub fn supported_pairs() -> Vec<TocttouPair> {
        tocttou_core::taxonomy::enumerate_pairs()
            .into_iter()
            .filter(|p| Self::supports(*p))
            .collect()
    }
}

/// The check-role rendering of a call, if expressible.
fn call_as_check(call: FsCall, path: &Arc<str>, aux: &Arc<str>) -> Option<SyscallRequest> {
    let path = path.clone();
    Some(match call {
        // Observation checks.
        FsCall::Stat => SyscallRequest::Stat { path },
        FsCall::Access => SyscallRequest::Access { path },
        FsCall::Lstat => SyscallRequest::Lstat { path },
        FsCall::Readlink => SyscallRequest::Readlink { path },
        // Creation checks ("the name now refers to what I just made").
        FsCall::Open | FsCall::Creat | FsCall::Mknod => SyscallRequest::OpenCreate { path },
        FsCall::Mkdir => SyscallRequest::Mkdir { path },
        FsCall::Symlink | FsCall::Link => SyscallRequest::Symlink {
            target: aux.clone(),
            linkpath: path,
        },
        FsCall::Rename => SyscallRequest::Rename {
            from: aux.clone(),
            to: path,
        },
        _ => return None,
    })
}

/// The use-role rendering of a call, if expressible.
fn call_as_use(
    call: FsCall,
    path: &Arc<str>,
    aux: &Arc<str>,
    owner: (Uid, Gid),
) -> Option<SyscallRequest> {
    let path = path.clone();
    Some(match call {
        FsCall::Chown => SyscallRequest::Chown {
            path,
            uid: owner.0,
            gid: owner.1,
        },
        FsCall::Chmod | FsCall::Utime => SyscallRequest::Chmod { path, mode: 0o600 },
        FsCall::Open | FsCall::Execve => SyscallRequest::Open { path },
        FsCall::Creat | FsCall::Truncate => SyscallRequest::OpenCreate { path },
        FsCall::Unlink => SyscallRequest::Unlink { path },
        FsCall::Rename => SyscallRequest::Rename {
            from: path,
            to: aux.clone(),
        },
        FsCall::Symlink | FsCall::Link => SyscallRequest::Symlink {
            target: aux.clone(),
            linkpath: path,
        },
        FsCall::Mkdir => SyscallRequest::Mkdir { path },
        _ => return None,
    })
}

impl ProcessLogic for GenericVictim {
    fn next_action(&mut self, _ctx: &LogicCtx, _last: Option<&SyscallResult>) -> Action {
        match self.state {
            GenState::Prologue => {
                self.state = GenState::Check;
                Action::Compute(self.cfg.prologue.sample(&mut self.rng))
            }
            GenState::Check => {
                self.state = GenState::Window;
                match call_as_check(self.cfg.pair.check(), &self.cfg.path, &self.cfg.aux_path) {
                    Some(req) => Action::Syscall(req),
                    None => Action::Exit,
                }
            }
            GenState::Window => {
                self.state = GenState::Use;
                Action::Compute(self.cfg.window)
            }
            GenState::Use => {
                self.state = GenState::Done;
                match call_as_use(
                    self.cfg.pair.use_call(),
                    &self.cfg.path,
                    &self.cfg.aux_path,
                    self.cfg.owner,
                ) {
                    Some(req) => Action::Syscall(req),
                    None => Action::Exit,
                }
            }
            GenState::Done => Action::Exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacker::{AttackerConfig, AttackerV1};
    use tocttou_os::machine::MachineSpec;
    use tocttou_os::prelude::*;
    use tocttou_sim::time::SimTime;

    #[test]
    fn most_of_the_taxonomy_is_runnable() {
        let supported = GenericVictim::supported_pairs();
        // 11 expressible check calls × 12 expressible use calls.
        assert_eq!(supported.len(), 132, "supported {}", supported.len());
        assert!(supported.contains(&TocttouPair::vi()));
        assert!(supported.contains(&TocttouPair::gedit()));
        assert!(supported.contains(&TocttouPair::sendmail()));
    }

    fn setup() -> Kernel {
        let mut k = Kernel::new(MachineSpec::smp_xeon().quiet(), 2);
        let root = InodeMeta {
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            mode: 0o755,
        };
        let user = InodeMeta {
            uid: Uid(1000),
            gid: Gid(1000),
            mode: 0o755,
        };
        k.vfs_mut().mkdir("/etc", root).unwrap();
        k.vfs_mut().create_file("/etc/passwd", root).unwrap();
        k.vfs_mut().mkdir("/home", root).unwrap();
        k.vfs_mut().mkdir("/home/user", user).unwrap();
        k
    }

    #[test]
    fn vi_pair_generic_victim_is_attackable_on_smp() {
        // <open, chown> with a 500 µs window: the attacker swaps the file
        // and the generic victim chowns /etc/passwd away.
        let mut k = setup();
        let cfg = GenericConfig::new(TocttouPair::vi(), "/home/user/f", 500.0);
        let vpid = k.spawn(
            "victim",
            Uid::ROOT,
            Gid::ROOT,
            true,
            Box::new(GenericVictim::new(cfg, 1)),
        );
        let atk = AttackerConfig::vi_smp("/home/user/f", "/etc/passwd");
        k.spawn(
            "attacker",
            Uid(1000),
            Gid(1000),
            false,
            Box::new(AttackerV1::new(atk, 2)),
        );
        k.run_until_exit(vpid, SimTime::from_secs(1));
        assert_eq!(k.vfs().stat("/etc/passwd").unwrap().uid, Uid(1000));
    }

    #[test]
    fn sendmail_pair_redirects_the_use_open() {
        // <stat, open>: the victim checks the mailbox then opens it; the
        // attacker swaps it for a symlink to /etc/passwd in between, so the
        // open lands on the privileged file.
        let mut k = setup();
        k.vfs_mut()
            .create_file(
                "/home/user/mbox",
                InodeMeta {
                    uid: Uid::ROOT,
                    gid: Gid::ROOT,
                    mode: 0o600,
                },
            )
            .unwrap();
        let cfg = GenericConfig::new(TocttouPair::sendmail(), "/home/user/mbox", 400.0);
        let vpid = k.spawn(
            "sendmail",
            Uid::ROOT,
            Gid::ROOT,
            true,
            Box::new(GenericVictim::new(cfg, 3)),
        );
        let atk = AttackerConfig::vi_smp("/home/user/mbox", "/etc/passwd");
        k.spawn(
            "attacker",
            Uid(1000),
            Gid(1000),
            false,
            Box::new(AttackerV1::new(atk, 4)),
        );
        k.run_until_exit(vpid, SimTime::from_secs(1));
        // The mailbox name now points at /etc/passwd: the victim's open
        // followed the symlink (visible in the trace as a successful open
        // after the swap).
        assert!(k.vfs().lstat("/home/user/mbox").unwrap().is_symlink);
        let opened_privileged = k
            .vfs()
            .stat("/home/user/mbox")
            .map(|st| st.uid == Uid::ROOT)
            .unwrap_or(false);
        assert!(opened_privileged, "open resolved to the privileged file");
    }

    #[test]
    fn zero_window_pair_is_not_attackable() {
        // With no window at all the attacker cannot land between check and
        // use (quiet machine, single round).
        let mut k = setup();
        let cfg = GenericConfig::new(TocttouPair::vi(), "/home/user/f", 0.0);
        let vpid = k.spawn(
            "victim",
            Uid::ROOT,
            Gid::ROOT,
            true,
            Box::new(GenericVictim::new(cfg, 9)),
        );
        let atk = AttackerConfig::vi_smp("/home/user/f", "/etc/passwd");
        k.spawn(
            "attacker",
            Uid(1000),
            Gid(1000),
            false,
            Box::new(AttackerV1::new(atk, 10)),
        );
        k.run_until_exit(vpid, SimTime::from_secs(1));
        assert_eq!(
            k.vfs().stat("/etc/passwd").unwrap().uid,
            Uid::ROOT,
            "no laxity, no attack"
        );
    }
}
