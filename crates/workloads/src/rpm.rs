//! An rpm-like victim: a vulnerability window that **contains blocking
//! I/O**.
//!
//! Section 3.2's upper-bound discussion singles out rpm (from the authors'
//! FAST '05 study) as a victim that is *always suspended* inside its window
//! — so a uniprocessor attacker reaches ~100 % success without any
//! multiprocessor help. The mechanism: rpm materializes a helper file, then
//! synchronously flushes its package database (blocking I/O) before acting
//! on the helper file by name.
//!
//! This victim reproduces that shape: `creat(helper)` → `write` →
//! **blocking database sync** → `chown(helper)`. The sync puts the victim
//! to sleep mid-window, handing the CPU to whoever is ready — on any number
//! of processors.

use std::sync::Arc;
use tocttou_os::ids::{Fd, Gid, Uid};
use tocttou_os::process::{Action, LogicCtx, ProcessLogic, SyscallRequest, SyscallResult};
use tocttou_sim::dist::DurationDist;
use tocttou_sim::rng::SimRng;
use tocttou_sim::time::SimDuration;

/// Configuration for an [`RpmInstall`] victim.
#[derive(Debug, Clone)]
pub struct RpmConfig {
    /// The helper/script file materialized during installation.
    pub helper: Arc<str>,
    /// Helper size in bytes.
    pub file_size: u64,
    /// The package's owner, applied by the final chown.
    pub owner: (Uid, Gid),
    /// How long the database sync blocks (I/O wait inside the window).
    pub db_sync: SimDuration,
    /// Idle time before the install starts.
    pub prologue: DurationDist,
    /// Computation between syscalls.
    pub inter_call_gap: SimDuration,
}

impl RpmConfig {
    /// Defaults modeled on a package-database flush of a few milliseconds.
    pub fn new(helper: impl Into<Arc<str>>, file_size: u64) -> Self {
        RpmConfig {
            helper: helper.into(),
            file_size,
            owner: (Uid(1000), Gid(1000)),
            db_sync: SimDuration::from_millis(5),
            prologue: DurationDist::uniform_us(0.0, 200.0),
            inter_call_gap: SimDuration::from_micros(10),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RpmState {
    Prologue,
    CreateHelper,
    Write,
    GapBeforeSync,
    DbSync,
    GapBeforeChown,
    Chown,
    Done,
}

/// The rpm-like victim program.
#[derive(Debug)]
pub struct RpmInstall {
    cfg: RpmConfig,
    state: RpmState,
    written: u64,
    fd: Option<Fd>,
    rng: SimRng,
}

impl RpmInstall {
    /// Creates the victim; `seed` randomizes the prologue.
    pub fn new(cfg: RpmConfig, seed: u64) -> Self {
        RpmInstall {
            cfg,
            state: RpmState::Prologue,
            written: 0,
            fd: None,
            rng: SimRng::seed_from_u64(seed),
        }
    }
}

impl ProcessLogic for RpmInstall {
    #[allow(clippy::only_used_in_recursion)]
    fn next_action(&mut self, ctx: &LogicCtx, last: Option<&SyscallResult>) -> Action {
        match self.state {
            RpmState::Prologue => {
                self.state = RpmState::CreateHelper;
                Action::Compute(self.cfg.prologue.sample(&mut self.rng))
            }
            RpmState::CreateHelper => {
                self.state = RpmState::Write;
                Action::Syscall(SyscallRequest::OpenCreate {
                    path: self.cfg.helper.clone(),
                })
            }
            RpmState::Write => {
                if self.fd.is_none() {
                    self.fd = last.and_then(|r| r.fd());
                    debug_assert!(self.fd.is_some(), "creat must return an fd");
                }
                if self.written >= self.cfg.file_size {
                    self.state = RpmState::GapBeforeSync;
                    return self.next_action(ctx, None);
                }
                let bytes = (self.cfg.file_size - self.written).clamp(1, 64 * 1024);
                self.written += bytes;
                Action::Syscall(SyscallRequest::Write {
                    fd: self.fd.expect("fd present"),
                    bytes,
                })
            }
            RpmState::GapBeforeSync => {
                self.state = RpmState::DbSync;
                Action::Compute(self.cfg.inter_call_gap)
            }
            RpmState::DbSync => {
                // The window's defining feature: the victim sleeps here.
                self.state = RpmState::GapBeforeChown;
                Action::Syscall(SyscallRequest::Sleep {
                    duration: self.cfg.db_sync,
                })
            }
            RpmState::GapBeforeChown => {
                self.state = RpmState::Chown;
                Action::Compute(self.cfg.inter_call_gap)
            }
            RpmState::Chown => {
                self.state = RpmState::Done;
                Action::Syscall(SyscallRequest::Chown {
                    path: self.cfg.helper.clone(),
                    uid: self.cfg.owner.0,
                    gid: self.cfg.owner.1,
                })
            }
            RpmState::Done => Action::Exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacker::{AttackerConfig, AttackerV1};
    use tocttou_os::machine::MachineSpec;
    use tocttou_os::prelude::*;
    use tocttou_sim::time::SimTime;

    fn setup(machine: MachineSpec) -> Kernel {
        let mut k = Kernel::new(machine, 5);
        let root = InodeMeta {
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            mode: 0o755,
        };
        let user = InodeMeta {
            uid: Uid(1000),
            gid: Gid(1000),
            mode: 0o755,
        };
        k.vfs_mut().mkdir("/etc", root).unwrap();
        k.vfs_mut().create_file("/etc/passwd", root).unwrap();
        k.vfs_mut().mkdir("/var", root).unwrap();
        k.vfs_mut().mkdir("/var/tmp", user).unwrap();
        k
    }

    #[test]
    fn install_completes_standalone() {
        let mut k = setup(MachineSpec::uniprocessor().quiet());
        let cfg = RpmConfig::new("/var/tmp/rpm-helper", 8192);
        let pid = k.spawn(
            "rpm",
            Uid::ROOT,
            Gid::ROOT,
            true,
            Box::new(RpmInstall::new(cfg, 1)),
        );
        k.run_until_exit(pid, SimTime::from_secs(1));
        let st = k.vfs().stat("/var/tmp/rpm-helper").unwrap();
        assert_eq!(st.size, 8192);
        assert_eq!(st.uid, Uid(1000));
    }

    /// The Section 3.2 bound: with the victim *always suspended* in-window,
    /// even a uniprocessor attacker wins essentially every round.
    #[test]
    fn uniprocessor_attack_succeeds_via_suspension() {
        let mut successes = 0;
        let rounds = 15;
        for seed in 0..rounds {
            let mut k = setup(MachineSpec::uniprocessor().quiet());
            let cfg = RpmConfig::new("/var/tmp/rpm-helper", 4096);
            let vpid = k.spawn(
                "rpm",
                Uid::ROOT,
                Gid::ROOT,
                true,
                Box::new(RpmInstall::new(cfg, seed)),
            );
            let atk = AttackerConfig::vi_smp("/var/tmp/rpm-helper", "/etc/passwd");
            k.spawn(
                "attacker",
                Uid(1000),
                Gid(1000),
                false,
                Box::new(AttackerV1::new(atk, seed ^ 0xFF)),
            );
            k.run_until_exit(vpid, SimTime::from_secs(1));
            if k.vfs().stat("/etc/passwd").unwrap().uid == Uid(1000) {
                successes += 1;
            }
        }
        assert_eq!(
            successes, rounds,
            "an always-suspended victim loses every race, even on one CPU"
        );
    }
}
