//! # tocttou-workloads — victims and attackers from the DSN'07 paper
//!
//! Faithful `ProcessLogic` transcriptions of the programs studied in
//! *"Multiprocessors May Reduce System Dependability under File-Based Race
//! Condition Attacks"* (Wei & Pu, DSN 2007):
//!
//! * [`vi::ViSave`] — the vi 6.1 save sequence with its `<open, chown>`
//!   window (Figure 1);
//! * [`gedit::GeditSave`] — the gedit 2.8.3 save sequence with its
//!   `<rename, chown>` window (Figure 3);
//! * [`attacker::AttackerV1`] — the basic detect-then-swap attacker
//!   (Figures 2 and 4);
//! * [`attacker::AttackerV2`] — the page-fault-free attacker (Figure 9);
//! * [`attacker::PipelinedDetector`]/[`attacker::PipelinedLinker`] — the
//!   two-thread pipelined attacker (Section 7);
//! * [`scenario::Scenario`] — named machine+victim+attacker bundles for
//!   every experiment in the paper's evaluation.
//!
//! # Examples
//!
//! ```
//! use tocttou_workloads::scenario::Scenario;
//!
//! // One Monte-Carlo round of the Table 2 experiment (gedit on the SMP).
//! let round = Scenario::gedit_smp(2048).run_round(7);
//! assert!(round.victim_exited);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacker;
pub mod dsl;
pub mod gedit;
pub mod generic;
pub mod maze;
pub mod rpm;
pub mod scenario;
pub mod sendmail;
pub mod vi;

pub use attacker::{AttackerConfig, AttackerV1, AttackerV2, PipelinedDetector, PipelinedLinker};
pub use dsl::{
    AttackerProfile, CallSpec, CompiledVictim, Expect, ScenarioSpec, Step, SuccessRule, Trigger,
};
pub use gedit::{GeditConfig, GeditSave};
pub use generic::{GenericConfig, GenericVictim};
pub use maze::{run_maze_round, vi_uniprocessor_maze, Maze};
pub use rpm::{RpmConfig, RpmInstall};
pub use scenario::{AttackerSpec, Layout, RoundHandles, RoundResult, Scenario, VictimSpec};
pub use sendmail::{SendmailConfig, SendmailDeliver};
pub use vi::{ViConfig, ViSave};
