//! Resumable sweep campaigns with content-addressed result caching.
//!
//! [`run_sweep`](crate::sweep::run_sweep) is one-shot and in-memory: every
//! invocation recomputes the full grid and holds every observation until
//! the end. The paper's figures want millions of rounds per point, where
//! that design pays the full recompute on every code change and grows
//! memory with round count. This module turns the sweep engine into a
//! **restartable results system**:
//!
//! * **Content-addressed blocks.** The unit of work is a *seed block* —
//!   one contiguous range `[start, end)` of a grid point's rounds, with
//!   per-round seeds fixed by [`seed_block`] regardless of scheduling. Its
//!   cache key is an FNV-1a hash (the same construction as the detection
//!   fingerprints) over the *scenario fingerprint* — engine schema version
//!   plus the full `Debug` rendering of the built [`Scenario`], which
//!   transitively covers the cost model, machine spec, victim, attacker
//!   and layout — chained with the point's seed and the block bounds.
//!   Because every simulated round is a pure function of (scenario, seed),
//!   equal keys imply equal results; any change to a fingerprint input
//!   changes the key and silently invalidates exactly the affected blocks.
//! * **Append-only store.** Finished blocks land in `blocks.jsonl`, one
//!   JSON record per line, plus a human-readable `manifest.json`. A killed
//!   campaign resumes by scanning the store and computing only the missing
//!   keys; a re-run after a code change recomputes only what the
//!   fingerprint invalidated. A partial final line (SIGKILL mid-write) is
//!   detected and truncated away on the next scan.
//! * **Work-stealing compute.** Missing blocks are claimed from a shared
//!   atomic cursor by the same long-lived pooled workers the sweep engine
//!   uses, so stragglers don't idle the pool.
//! * **Streaming aggregation.** Once every block is present, the aggregate
//!   is folded point by point, block by block, straight out of the store:
//!   one [`BlockRecord`] in memory at a time, observations folded in round
//!   order into the shared [`PointAcc`], metrics and forensics merged
//!   in place. Peak memory is bounded by one block plus the store index,
//!   flat in the total round count.
//!
//! The one-shot [`run_sweep`](crate::sweep::run_sweep) is kept as the
//! byte-identity oracle, in the same spirit as the warm/cold boot and
//! wheel/heap queue oracles: a completed campaign's
//! [`aggregate`](CampaignOutcome::aggregate) serializes byte-for-byte
//! identically to `run_sweep` on the same grid, at any `--jobs` value and
//! either boot mode, whether computed in one shot, resumed after an
//! interruption, or replayed entirely from cache.
//!
//! Campaigns always run with `collect_ld` off: L/D extraction is a
//! one-shot tracing concern (`--collect-ld` on the `sweep` binary), not a
//! bulk-statistics one, and the store persists only what aggregation
//! needs.

use crate::grid::Grid;
use crate::monte_carlo::{
    effective_jobs, fnv1a, run_one_round, PointAcc, RoundBoot, RoundObs, DETECTION_FINGERPRINT_SEED,
};
use crate::sweep::{SweepOutcome, SweepPoint};
use crate::{extract::WindowKind, monte_carlo::window_kind_of};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tocttou_os::forensics::ForensicsSnapshot;
use tocttou_os::kernel::{Checkpoint, KernelPool};
use tocttou_os::metrics::MetricsSnapshot;
use tocttou_sim::rng::seed_block;
use tocttou_workloads::scenario::Scenario;

/// Version of the engine + store schema baked into every cache key.
///
/// Bump this whenever simulation semantics or the [`BlockRecord`] layout
/// change: every existing key stops matching and the whole store is
/// recomputed, which is the only safe reading of "the code changed under
/// the cache".
///
/// v2: [`ObsRecord`] gained the per-round forensics milestones
/// (`window_closed`, `min_miss_ns`, `strike_hit`) that drive the
/// rare-event estimator's stratum splitting.
pub const ENGINE_SCHEMA_VERSION: u32 = 2;

/// The content fingerprint of one built scenario.
///
/// FNV-1a over [`ENGINE_SCHEMA_VERSION`] and the scenario's full `Debug`
/// rendering. The `Debug` form transitively covers everything that
/// determines a round's result — name, machine spec (including every cost
/// model field), victim, attacker and layout — so editing any of them
/// yields a new fingerprint, while re-running an unchanged tree reproduces
/// the old one exactly.
pub fn scenario_fingerprint(scenario: &Scenario) -> u64 {
    let h = fnv1a(
        DETECTION_FINGERPRINT_SEED,
        &ENGINE_SCHEMA_VERSION.to_le_bytes(),
    );
    fnv1a(h, format!("{scenario:?}").as_bytes())
}

/// The content-addressed cache key of one seed block: the scenario
/// fingerprint chained with the point's base seed and the block's round
/// range. Deliberately independent of `--jobs`, boot mode and scheduling —
/// everything that cannot change the block's results.
pub fn block_key(scenario_fp: u64, point_seed: u64, start: u64, end: u64) -> u64 {
    let h = fnv1a(scenario_fp, &point_seed.to_le_bytes());
    let h = fnv1a(h, &start.to_le_bytes());
    fnv1a(h, &end.to_le_bytes())
}

/// Options for one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The parameter grid to cover.
    pub grid: Grid,
    /// Monte-Carlo rounds per grid point.
    pub rounds: u64,
    /// Campaign-level base seed; point *p* runs rounds at
    /// `base_seed + p.seed_salt + i`, exactly like the sweep engine.
    pub base_seed: u64,
    /// Worker threads for the compute phase (`0` = auto, `1` = serial).
    /// Results are bit-identical for every value.
    pub jobs: usize,
    /// Cold-boot every round instead of resuming each point's warm
    /// checkpoint — the oracle path, byte-identical to the warm default
    /// and deliberately absent from the cache key.
    pub cold: bool,
    /// Rounds per seed block — the unit of caching and resumability.
    /// Clamped to at least 1.
    pub block: u64,
    /// Stop after computing this many missing blocks (the store stays
    /// valid and a later run resumes). `None` runs to completion.
    pub max_blocks: Option<u64>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            grid: Grid::default(),
            rounds: 200,
            base_seed: 0x7061_7065,
            jobs: 1,
            cold: false,
            block: 100,
            max_blocks: None,
        }
    }
}

/// What one round persists to the store: the fields of
/// [`RoundObs`](crate::monte_carlo::RoundObs) minus the L/D trace sample
/// (campaigns never collect L/D), plus the forensics milestones the
/// rare-event estimator splits strata on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct ObsRecord {
    pub(crate) success: bool,
    pub(crate) flagged: bool,
    pub(crate) window_us: Option<f64>,
    pub(crate) detect_latency_us: Option<f64>,
    pub(crate) detect_fingerprint: u64,
    pub(crate) window_closed: bool,
    pub(crate) min_miss_ns: Option<u64>,
    pub(crate) strike_hit: bool,
}

impl ObsRecord {
    pub(crate) fn from_obs(obs: &RoundObs) -> Self {
        ObsRecord {
            success: obs.success,
            flagged: obs.flagged,
            window_us: obs.window_us,
            detect_latency_us: obs.detect_latency_us,
            detect_fingerprint: obs.detect_fingerprint,
            window_closed: obs.window_closed,
            min_miss_ns: obs.min_miss_ns,
            strike_hit: obs.strike_hit,
        }
    }

    pub(crate) fn into_obs(self) -> RoundObs {
        RoundObs {
            success: self.success,
            window_us: self.window_us,
            sample: None,
            flagged: self.flagged,
            detect_latency_us: self.detect_latency_us,
            detect_fingerprint: self.detect_fingerprint,
            window_closed: self.window_closed,
            min_miss_ns: self.min_miss_ns,
            strike_hit: self.strike_hit,
        }
    }
}

/// One finished seed block, as stored on one `blocks.jsonl` line.
///
/// `point`, `start` and `end` describe the run that *wrote* the record;
/// lookups go purely by `key`, so a record written under an older grid
/// layout is still found (or correctly ignored) by its content address.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct BlockRecord {
    pub(crate) key: u64,
    pub(crate) point: usize,
    pub(crate) start: u64,
    pub(crate) end: u64,
    pub(crate) obs: Vec<ObsRecord>,
    pub(crate) metrics: MetricsSnapshot,
    pub(crate) forensics: ForensicsSnapshot,
}

/// The human-readable store summary, rewritten after every run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// [`ENGINE_SCHEMA_VERSION`] of the writing engine.
    pub schema_version: u32,
    /// Rounds per grid point of the last run's config.
    pub rounds_per_point: u64,
    /// Base seed of the last run's config.
    pub base_seed: u64,
    /// Seed-block size of the last run's config.
    pub block: u64,
    /// Grid points of the last run's config.
    pub points: u64,
    /// Blocks the last run's grid needs in total.
    pub total_blocks: u64,
    /// How many of them the store already holds.
    pub done_blocks: u64,
}

impl std::fmt::Display for Manifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "campaign store: {}/{} blocks ({} points × {} rounds, block {}, seed {:#x}, schema v{})",
            self.done_blocks,
            self.total_blocks,
            self.points,
            self.rounds_per_point,
            self.block,
            self.base_seed,
            self.schema_version
        )
    }
}

/// What one [`run_campaign`] invocation did.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Blocks the grid needs in total.
    pub total_blocks: u64,
    /// Blocks served from the store without recomputation.
    pub cached_blocks: u64,
    /// Blocks computed (and persisted) by this invocation.
    pub computed_blocks: u64,
    /// Blocks still missing (non-zero only under
    /// [`max_blocks`](CampaignConfig::max_blocks)).
    pub remaining_blocks: u64,
    /// The streamed aggregate — present only when the store covers the
    /// whole grid; byte-identical to [`run_sweep`](crate::sweep::run_sweep)
    /// on the same grid with `collect_ld` off.
    pub aggregate: Option<SweepOutcome>,
}

impl std::fmt::Display for CampaignOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "campaign: {} blocks ({} cached, {} computed, {} remaining)",
            self.total_blocks, self.cached_blocks, self.computed_blocks, self.remaining_blocks
        )
    }
}

/// One seed block in a run's expected schedule (and, before it is
/// computed, the unit of missing work).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Missing {
    pub(crate) point: usize,
    pub(crate) start: u64,
    pub(crate) end: u64,
    pub(crate) key: u64,
}

/// Location of one stored block line: `(byte offset, byte length)`.
pub(crate) type LineSpan = (u64, u64);

pub(crate) fn blocks_path(store: &Path) -> PathBuf {
    store.join("blocks.jsonl")
}

fn manifest_path(store: &Path) -> PathBuf {
    store.join("manifest.json")
}

/// Reads a store's manifest, if one exists.
///
/// # Errors
///
/// Propagates I/O failures other than the file being absent, and parse
/// failures of an existing manifest.
pub fn read_manifest(store: &Path) -> std::io::Result<Option<Manifest>> {
    match std::fs::read_to_string(manifest_path(store)) {
        Ok(text) => serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| std::io::Error::other(format!("bad manifest: {e}"))),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Extracts the cache key from a stored block line without parsing the
/// whole record: every line this engine writes starts with `{"key":N,`
/// (serde emits fields in declaration order). The scan is the hot half of
/// a warm-cache replay, and the full record is parsed — and validated —
/// during aggregation anyway, so a prefix read keeps cache hits cheap.
fn line_key(line: &str) -> Option<u64> {
    let rest = line.strip_prefix("{\"key\":")?;
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

/// Scans `blocks.jsonl`, returning the key → line-span index and
/// truncating a torn final line (a kill mid-append) so the file is safe to
/// append to again. Lines that don't parse are skipped; only the trailing
/// torn region is removed.
pub(crate) fn scan_store(path: &Path) -> std::io::Result<HashMap<u64, LineSpan>> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
        Err(e) => return Err(e),
    };
    let total_len = file.metadata()?.len();
    let mut reader = BufReader::new(file);
    let mut index = HashMap::new();
    let mut offset = 0u64;
    let mut good_end = 0u64;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)? as u64;
        if n == 0 {
            break;
        }
        let complete = line.ends_with('\n');
        if complete {
            good_end = offset + n;
            // Only the key matters for the index; the record is re-read
            // (and fully validated) lazily during aggregation, so the scan
            // stays cheap and memory-flat. Foreign lines (hand-edited or
            // written by a different serializer) fall back to a full parse
            // before being skipped.
            let trimmed = line.trim_end();
            let key = line_key(trimmed).or_else(|| {
                serde_json::from_str::<serde_json::Value>(trimmed)
                    .ok()?
                    .get("key")?
                    .as_u64()
            });
            if let Some(key) = key {
                index.insert(key, (offset, n));
            }
        }
        offset += n;
    }
    if good_end < total_len {
        // Torn tail: drop it so the next append starts on a line boundary.
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(good_end)?;
    }
    Ok(index)
}

/// Runs (or resumes) a campaign against the store directory.
///
/// Missing blocks are computed and appended; when the store then covers
/// the whole grid, the aggregate is streamed out of it. See the [module
/// docs](self) for the caching and identity contract.
///
/// # Errors
///
/// Propagates store I/O failures and corrupt stored records. Simulation
/// itself is infallible.
pub fn run_campaign(store: &Path, cfg: &CampaignConfig) -> std::io::Result<CampaignOutcome> {
    std::fs::create_dir_all(store)?;
    let block = cfg.block.max(1);
    let points = &cfg.grid.points;
    let scenarios: Vec<Scenario> = points.iter().map(|p| p.scenario()).collect();
    let point_seeds: Vec<u64> = points
        .iter()
        .map(|p| cfg.base_seed.wrapping_add(p.seed_salt))
        .collect();
    let expected = expected_blocks(&scenarios, &point_seeds, cfg.rounds, block);
    let total_blocks = expected.len() as u64;

    let path = blocks_path(store);
    let mut index = scan_store(&path)?;
    let mut missing: Vec<Missing> = Vec::new();
    let mut cached_blocks = 0u64;
    for item in expected.iter() {
        if index.contains_key(&item.key) {
            cached_blocks += 1;
        } else {
            missing.push(*item);
        }
    }
    let deferred = missing
        .len()
        .saturating_sub(cfg.max_blocks.map_or(usize::MAX, |m| m as usize));
    missing.truncate(missing.len() - deferred);

    let computed_blocks = missing.len() as u64;
    if !missing.is_empty() {
        compute_blocks(
            &path,
            cfg.jobs,
            cfg.cold,
            &scenarios,
            &point_seeds,
            &missing,
        )?;
        // Re-scan rather than threading offsets out of the workers: one
        // code path, and the appended records get the same torn-line
        // validation as pre-existing ones.
        index = scan_store(&path)?;
    }

    let done_blocks = expected
        .iter()
        .filter(|i| index.contains_key(&i.key))
        .count() as u64;
    let manifest = Manifest {
        schema_version: ENGINE_SCHEMA_VERSION,
        rounds_per_point: cfg.rounds,
        base_seed: cfg.base_seed,
        block,
        points: points.len() as u64,
        total_blocks,
        done_blocks,
    };
    std::fs::write(
        manifest_path(store),
        serde_json::to_string_pretty(&manifest).expect("manifest serialization is infallible")
            + "\n",
    )?;

    let remaining_blocks = total_blocks - done_blocks;
    let aggregate = if remaining_blocks == 0 {
        Some(aggregate_store(&path, cfg, &scenarios, &expected, &index)?)
    } else {
        None
    };
    Ok(CampaignOutcome {
        total_blocks,
        cached_blocks,
        computed_blocks,
        remaining_blocks,
        aggregate,
    })
}

/// The deterministic block schedule of `rounds` rounds per scenario in
/// point-major, ascending-round order — the aggregation order, and the
/// order missing work is claimed in. Shared by campaigns and the
/// rare-event estimator's store-backed waves.
pub(crate) fn expected_blocks(
    scenarios: &[Scenario],
    point_seeds: &[u64],
    rounds: u64,
    block: u64,
) -> Vec<Missing> {
    let block = block.max(1);
    let mut expected: Vec<Missing> = Vec::new();
    for (p, scenario) in scenarios.iter().enumerate() {
        let fp = scenario_fingerprint(scenario);
        let mut start = 0;
        while start < rounds {
            let end = (start + block).min(rounds);
            expected.push(Missing {
                point: p,
                start,
                end,
                key: block_key(fp, point_seeds[p], start, end),
            });
            start = end;
        }
    }
    expected
}

/// Computes the missing blocks across worker threads and appends each to
/// the store as it finishes.
pub(crate) fn compute_blocks(
    path: &Path,
    jobs: usize,
    cold: bool,
    scenarios: &[Scenario],
    point_seeds: &[u64],
    missing: &[Missing],
) -> std::io::Result<()> {
    let kinds: Vec<WindowKind> = scenarios.iter().map(window_kind_of).collect();
    // Same template-fork and warm-checkpoint setup as the sweep engine;
    // built only when there is work, so a fully warm re-run never pays for
    // boot prefixes it won't use.
    let templates: Vec<tocttou_os::vfs::Vfs> = match scenarios.first() {
        None => Vec::new(),
        Some(first) => {
            let base = first.base_vfs();
            scenarios
                .iter()
                .map(|s| s.template_vfs_from_base(&base))
                .collect()
        }
    };
    let checkpoints: Vec<Checkpoint> = if cold {
        Vec::new()
    } else {
        scenarios
            .iter()
            .zip(&templates)
            .map(|(s, t)| s.round_checkpoint(t))
            .collect()
    };
    let boots: Vec<RoundBoot<'_>> = if cold {
        templates.iter().map(RoundBoot::Cold).collect()
    } else {
        checkpoints.iter().map(RoundBoot::Warm).collect()
    };

    let writer = Mutex::new(
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?,
    );
    let failure: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let total_rounds: u64 = missing.iter().map(|m| m.end - m.start).sum();
    let workers = effective_jobs(jobs, total_rounds).min(missing.len());
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let (scenarios, boots, kinds, next, writer, failure) =
            (&scenarios, &boots, &kinds, &next, &writer, &failure);
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    // One long-lived recycled pool per worker, shared across
                    // every block it steals off the cursor.
                    let mut pool = KernelPool::new().retain_metrics();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = missing.get(idx) else { break };
                        let p = item.point;
                        let mut obs = Vec::with_capacity((item.end - item.start) as usize);
                        for seed in seed_block(point_seeds[p], item.start, item.end) {
                            let (o, returned) =
                                run_one_round(&scenarios[p], boots[p], pool, seed, kinds[p], false);
                            pool = returned;
                            obs.push(ObsRecord::from_obs(&o));
                        }
                        let record = BlockRecord {
                            key: item.key,
                            point: p,
                            start: item.start,
                            end: item.end,
                            obs,
                            metrics: pool.drain_metrics(),
                            forensics: pool.drain_forensics(),
                        };
                        let line = serde_json::to_string(&record)
                            .expect("block serialization is infallible")
                            + "\n";
                        // One line per lock hold, flushed before release:
                        // lines never interleave and a finished block is
                        // durable the moment the lock drops.
                        let result = {
                            let mut file = writer.lock().expect("store writer poisoned");
                            file.write_all(line.as_bytes()).and_then(|()| file.flush())
                        };
                        if let Err(e) = result {
                            failure
                                .lock()
                                .expect("failure slot poisoned")
                                .get_or_insert(e);
                            break;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("campaign worker panicked");
        }
    });
    match failure.into_inner().expect("failure slot poisoned") {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Streams the aggregate out of a complete store: for each point in grid
/// order, each block in round order is re-read by its line span and folded
/// into the point accumulator, then dropped. Memory peaks at one block.
fn aggregate_store(
    path: &Path,
    cfg: &CampaignConfig,
    scenarios: &[Scenario],
    expected: &[Missing],
    index: &HashMap<u64, LineSpan>,
) -> std::io::Result<SweepOutcome> {
    let mut file = std::fs::File::open(path)?;
    let mut accs: Vec<PointAcc> = scenarios.iter().map(|_| PointAcc::new()).collect();
    let mut line = Vec::new();
    for item in expected {
        let &span = index
            .get(&item.key)
            .expect("aggregation runs only on a complete store");
        let record = read_block(&mut file, span, &mut line, item)?;
        // Same fold discipline as the sweep engine's reassembly: metrics
        // and forensics merge order-free, observations fold in round order.
        let acc = &mut accs[item.point];
        acc.merge_metrics(&record.metrics);
        acc.merge_forensics(&record.forensics);
        for o in record.obs {
            acc.fold(o.into_obs());
        }
    }
    Ok(SweepOutcome {
        rounds_per_point: cfg.rounds,
        base_seed: cfg.base_seed,
        collect_ld: false,
        points: accs
            .into_iter()
            .zip(scenarios)
            .zip(&cfg.grid.points)
            .map(|((acc, scenario), point)| SweepPoint {
                point: point.describe(),
                outcome: acc.finish(scenario),
            })
            .collect(),
    })
}

/// Re-reads one stored block by its line span and validates it against the
/// expected schedule entry (round count must match the block bounds).
pub(crate) fn read_block(
    file: &mut std::fs::File,
    (offset, len): LineSpan,
    buf: &mut Vec<u8>,
    item: &Missing,
) -> std::io::Result<BlockRecord> {
    file.seek(SeekFrom::Start(offset))?;
    buf.resize(len as usize, 0);
    file.read_exact(buf)?;
    let text = std::str::from_utf8(buf)
        .map_err(|e| std::io::Error::other(format!("stored block is not UTF-8: {e}")))?;
    let record: BlockRecord = serde_json::from_str(text.trim_end())
        .map_err(|e| std::io::Error::other(format!("corrupt stored block: {e}")))?;
    if record.obs.len() as u64 != item.end - item.start {
        return Err(std::io::Error::other(format!(
            "stored block {:#x} holds {} rounds, expected {}",
            item.key,
            record.obs.len(),
            item.end - item.start
        )));
    }
    Ok(record)
}

/// What [`compact_store`] removed and kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Block lines surviving compaction (one per live expected key).
    pub kept: u64,
    /// Lines dropped: superseded duplicates, records orphaned by config or
    /// code changes, and unparseable foreign lines.
    pub dropped: u64,
    /// `blocks.jsonl` size before, in bytes (after torn-tail healing).
    pub bytes_before: u64,
    /// `blocks.jsonl` size after, in bytes.
    pub bytes_after: u64,
}

impl std::fmt::Display for CompactStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "compacted: kept {} blocks, dropped {} lines, {} → {} bytes",
            self.kept, self.dropped, self.bytes_before, self.bytes_after
        )
    }
}

/// Rewrites `blocks.jsonl` keeping only the records the config's grid
/// still addresses — the *last* occurrence of each expected key — and
/// dropping everything else: superseded duplicates, blocks orphaned by a
/// grid/seed/schema change, torn tails and foreign lines. Surviving lines
/// are copied byte-for-byte (never re-serialized) in deterministic
/// point-major order, so a subsequent aggregate is identical to the
/// pre-compaction one and a second compaction is a no-op.
///
/// The rewrite goes through a temp file in the store directory followed by
/// an atomic rename: a kill mid-compaction leaves the original intact.
///
/// # Errors
///
/// Propagates store I/O failures. A missing store compacts to itself
/// (zero kept, zero dropped).
pub fn compact_store(store: &Path, cfg: &CampaignConfig) -> std::io::Result<CompactStats> {
    let path = blocks_path(store);
    let index = scan_store(&path)?; // heals any torn tail first
    let bytes_before = match std::fs::metadata(&path) {
        Ok(m) => m.len(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
        Err(e) => return Err(e),
    };
    let total_lines = if bytes_before == 0 {
        0u64
    } else {
        let mut reader = BufReader::new(std::fs::File::open(&path)?);
        let mut n = 0u64;
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            n += 1;
        }
        n
    };
    if bytes_before == 0 {
        return Ok(CompactStats {
            kept: 0,
            dropped: 0,
            bytes_before: 0,
            bytes_after: 0,
        });
    }

    let scenarios: Vec<Scenario> = cfg.grid.points.iter().map(|p| p.scenario()).collect();
    let point_seeds: Vec<u64> = cfg
        .grid
        .points
        .iter()
        .map(|p| cfg.base_seed.wrapping_add(p.seed_salt))
        .collect();
    let expected = expected_blocks(&scenarios, &point_seeds, cfg.rounds, cfg.block);

    let tmp = store.join("blocks.jsonl.tmp");
    let mut kept = 0u64;
    {
        let mut file = std::fs::File::open(&path)?;
        let mut out = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        let mut buf = Vec::new();
        for item in &expected {
            let Some(&(offset, len)) = index.get(&item.key) else {
                continue;
            };
            file.seek(SeekFrom::Start(offset))?;
            buf.resize(len as usize, 0);
            file.read_exact(&mut buf)?;
            out.write_all(&buf)?;
            kept += 1;
        }
        out.flush()?;
    }
    std::fs::rename(&tmp, &path)?;
    let bytes_after = std::fs::metadata(&path)?.len();
    Ok(CompactStats {
        kept,
        dropped: total_lines - kept,
        bytes_before,
        bytes_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Family, GridKind};

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            grid: GridKind::D.build(Family::ViSmp, 1024, 2),
            rounds: 12,
            base_seed: 0xCAFE,
            jobs: 1,
            cold: false,
            block: 5,
            max_blocks: None,
        }
    }

    #[test]
    fn fingerprints_are_stable_and_content_sensitive() {
        let cfg = small_cfg();
        let s0 = cfg.grid.points[0].scenario();
        assert_eq!(
            scenario_fingerprint(&s0),
            scenario_fingerprint(&cfg.grid.points[0].scenario()),
            "same point, same fingerprint"
        );
        assert_ne!(
            scenario_fingerprint(&s0),
            scenario_fingerprint(&cfg.grid.points[1].scenario()),
            "different d_scale, different fingerprint"
        );
        let k = block_key(1, 2, 0, 5);
        assert_ne!(k, block_key(3, 2, 0, 5), "scenario fp is hashed");
        assert_ne!(k, block_key(1, 9, 0, 5), "point seed is hashed");
        assert_ne!(k, block_key(1, 2, 5, 10), "block bounds are hashed");
        assert_eq!(k, block_key(1, 2, 0, 5), "pure function of inputs");
    }

    #[test]
    fn campaign_completes_resumes_and_replays_from_cache() {
        let dir = std::env::temp_dir().join(format!("campaign-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = small_cfg();
        // 12 rounds / block 5 → blocks of 5, 5, 2 per point; 6 total.

        // Interrupted start: only 2 blocks land.
        let partial = run_campaign(
            &dir,
            &CampaignConfig {
                max_blocks: Some(2),
                ..cfg.clone()
            },
        )
        .unwrap();
        assert_eq!(partial.total_blocks, 6);
        assert_eq!(partial.computed_blocks, 2);
        assert_eq!(partial.remaining_blocks, 4);
        assert!(partial.aggregate.is_none());
        let manifest = read_manifest(&dir).unwrap().unwrap();
        assert_eq!(manifest.done_blocks, 2);

        // Resume finishes the rest and aggregates.
        let resumed = run_campaign(&dir, &cfg).unwrap();
        assert_eq!(resumed.cached_blocks, 2);
        assert_eq!(resumed.computed_blocks, 4);
        let first = resumed.aggregate.expect("store is complete");

        // Warm replay computes nothing and reproduces the bytes.
        let warm = run_campaign(&dir, &cfg).unwrap();
        assert_eq!(warm.computed_blocks, 0);
        assert_eq!(warm.cached_blocks, 6);
        assert_eq!(
            serde_json::to_string(&warm.aggregate.unwrap()).unwrap(),
            serde_json::to_string(&first).unwrap()
        );
        assert_eq!(read_manifest(&dir).unwrap().unwrap().done_blocks, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_dead_lines_and_preserves_the_aggregate() {
        let dir = std::env::temp_dir().join(format!("campaign-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = small_cfg();
        let done = run_campaign(&dir, &cfg).unwrap();
        assert_eq!(done.remaining_blocks, 0);
        let oracle = serde_json::to_string(&done.aggregate.unwrap()).unwrap();
        let path = blocks_path(&dir);

        // Pollute the store: a superseding re-append of the first block
        // (its earlier copy becomes a dead duplicate), an orphan from a
        // different base seed, and a foreign hand-written line.
        let first_line = {
            let text = std::fs::read_to_string(&path).unwrap();
            text.lines().next().unwrap().to_string() + "\n"
        };
        let orphan_cfg = CampaignConfig {
            base_seed: 0xBEEF,
            ..cfg.clone()
        };
        run_campaign(&dir, &orphan_cfg).unwrap();
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(first_line.as_bytes()).unwrap();
            f.write_all(b"{\"not\":\"a block\"}\n").unwrap();
        }
        let bloated = std::fs::metadata(&path).unwrap().len();

        let stats = compact_store(&dir, &cfg).unwrap();
        assert_eq!(stats.kept, 6, "one line per live block");
        // 6 orphaned (other seed) + 1 duplicate + 1 foreign line dropped.
        assert_eq!(stats.dropped, 8);
        assert_eq!(stats.bytes_before, bloated);
        assert!(stats.bytes_after < stats.bytes_before);

        // The aggregate is byte-identical and served fully from cache.
        let replay = run_campaign(&dir, &cfg).unwrap();
        assert_eq!(replay.computed_blocks, 0);
        assert_eq!(
            serde_json::to_string(&replay.aggregate.unwrap()).unwrap(),
            oracle
        );

        // Idempotent: a second compaction moves nothing.
        let again = compact_store(&dir, &cfg).unwrap();
        assert_eq!(again.kept, 6);
        assert_eq!(again.dropped, 0);
        assert_eq!(again.bytes_before, again.bytes_after);

        // An absent store compacts to the empty stats.
        let empty_dir = dir.join("nothing-here");
        std::fs::create_dir_all(&empty_dir).unwrap();
        let none = compact_store(&empty_dir, &cfg).unwrap();
        assert_eq!(none.kept, 0);
        assert_eq!(none.dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_truncated_and_recomputed() {
        let dir = std::env::temp_dir().join(format!("campaign-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = small_cfg();
        let done = run_campaign(&dir, &cfg).unwrap();
        assert_eq!(done.remaining_blocks, 0);
        let oracle = serde_json::to_string(&done.aggregate.unwrap()).unwrap();

        // Simulate a kill mid-append: chop the last line in half.
        let path = blocks_path(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.len() - text.trim_end().rsplit('\n').next().unwrap().len() / 2 - 1;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(keep as u64)
            .unwrap();

        let healed = run_campaign(&dir, &cfg).unwrap();
        assert_eq!(healed.computed_blocks, 1, "only the torn block recomputes");
        assert_eq!(
            serde_json::to_string(&healed.aggregate.unwrap()).unwrap(),
            oracle
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
