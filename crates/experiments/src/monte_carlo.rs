//! The Monte-Carlo experiment driver.
//!
//! Runs N independent rounds of a [`Scenario`] with per-round seeds derived
//! from a base seed, accumulating the success rate and (optionally) the
//! paper's L/D statistics from traced rounds.

use crate::extract::{observe, window_length_us, WindowKind};
use serde::Serialize;
use tocttou_core::analysis::LdEstimator;
use tocttou_core::model::MeasuredUs;
use tocttou_core::stats::{OnlineStats, SuccessCounter};
use tocttou_workloads::scenario::{Scenario, VictimSpec};

/// Options for a Monte-Carlo batch.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Number of rounds (the paper uses 500 for Figure 6).
    pub rounds: u64,
    /// Base seed; round *i* uses `base_seed + i`.
    pub base_seed: u64,
    /// Whether to trace rounds and extract L/D (slower; needed for
    /// Figure 7 and Tables 1–2).
    pub collect_ld: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            rounds: 200,
            base_seed: 0x7061_7065,
            collect_ld: false,
        }
    }
}

/// Aggregated results of a Monte-Carlo batch.
#[derive(Debug, Clone, Serialize)]
pub struct McOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Rounds run.
    pub rounds: u64,
    /// Successes over rounds.
    pub successes: u64,
    /// Observed success rate.
    pub rate: f64,
    /// Wilson 95 % interval for the rate.
    pub rate_ci95: (f64, f64),
    /// Measured L (mean ± stdev, µs), when collected.
    pub l: Option<MeasuredUs>,
    /// Measured D (mean ± stdev, µs), when collected.
    pub d: Option<MeasuredUs>,
    /// Rounds in which the attacker detected the window.
    pub detected_rounds: u64,
    /// Mean vulnerability-window length (µs), when collected.
    pub window_us: Option<f64>,
    /// Formula (1) evaluated at the measured mean L and D.
    pub predicted_rate_ld: Option<f64>,
}

impl McOutcome {
    fn from_parts(
        scenario: &Scenario,
        counter: SuccessCounter,
        ld: LdEstimator,
        windows: OnlineStats,
    ) -> Self {
        let (l, d) = match ld.estimates() {
            Some((l, d)) => (Some(l), Some(d)),
            None => (None, None),
        };
        McOutcome {
            scenario: scenario.name.clone(),
            rounds: counter.trials(),
            successes: counter.successes(),
            rate: counter.rate(),
            rate_ci95: counter.wilson_ci95(),
            l,
            d,
            detected_rounds: ld.count(),
            window_us: (windows.count() > 0).then(|| windows.mean()),
            predicted_rate_ld: ld.predicted_success_rate(),
        }
    }
}

impl std::fmt::Display for McOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}/{} = {:.1}% [{:.1}%, {:.1}%]",
            self.scenario,
            self.successes,
            self.rounds,
            self.rate * 100.0,
            self.rate_ci95.0 * 100.0,
            self.rate_ci95.1 * 100.0
        )?;
        if let (Some(l), Some(d)) = (self.l, self.d) {
            write!(f, "  L = {l}, D = {d}")?;
        }
        Ok(())
    }
}

/// The window kind a scenario's victim defines.
pub fn window_kind_of(scenario: &Scenario) -> WindowKind {
    match scenario.victim {
        VictimSpec::Vi(_) => WindowKind::ViCreat,
        VictimSpec::Gedit(_) => WindowKind::GeditRename,
    }
}

/// Fraction of L/D samples trimmed from each tail before estimation.
///
/// The rare round in which a background burst lands *inside* the window
/// stretches that round's t3 by the burst's length, producing an L outlier
/// an order of magnitude off the population. The paper's tiny reported
/// standard deviations (±3.78 µs for L over 1-byte runs) show such rounds
/// were not part of its averages; a symmetric 5 % trim removes them without
/// cherry-picking.
const LD_TRIM_FRAC: f64 = 0.05;

/// Runs the batch.
pub fn run_mc(scenario: &Scenario, cfg: &McConfig) -> McOutcome {
    let mut counter = SuccessCounter::new();
    let mut samples: Vec<tocttou_core::analysis::LdSample> = Vec::new();
    let mut windows = OnlineStats::new();
    let kind = window_kind_of(scenario);
    for i in 0..cfg.rounds {
        let seed = cfg.base_seed.wrapping_add(i);
        if cfg.collect_ld {
            let (result, handles) = scenario.run_traced(seed);
            counter.record(result.success);
            if let Some(obs) = observe(
                handles.kernel.trace(),
                handles.victim,
                handles.attackers[0],
                kind,
                &scenario.layout.doc,
            ) {
                windows.push(window_length_us(&obs));
                if let Some(sample) = obs.ld_sample() {
                    samples.push(sample);
                }
            }
        } else {
            counter.record(scenario.run_round(seed).success);
        }
    }
    let ld = trimmed_estimator(samples, LD_TRIM_FRAC);
    McOutcome::from_parts(scenario, counter, ld, windows)
}

/// Builds an estimator from samples with a symmetric fraction trimmed from
/// each tail of the L distribution.
fn trimmed_estimator(mut samples: Vec<tocttou_core::analysis::LdSample>, frac: f64) -> LdEstimator {
    samples.sort_by(|a, b| a.l_us.total_cmp(&b.l_us));
    let cut = (samples.len() as f64 * frac).floor() as usize;
    let kept = if samples.len() > 2 * cut {
        &samples[cut..samples.len() - cut]
    } else {
        &samples[..]
    };
    kept.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tocttou_workloads::scenario::Scenario;

    #[test]
    fn mc_counts_rounds_and_rates() {
        let s = Scenario::vi_smp(20 * 1024);
        let out = run_mc(
            &s,
            &McConfig {
                rounds: 10,
                base_seed: 1,
                collect_ld: false,
            },
        );
        assert_eq!(out.rounds, 10);
        assert!(out.rate > 0.9, "vi SMP ~100%: {}", out.rate);
        assert!(out.l.is_none(), "no L/D without collect_ld");
    }

    #[test]
    fn mc_collects_ld_for_table1_shape() {
        let s = Scenario::vi_smp(1);
        let out = run_mc(
            &s,
            &McConfig {
                rounds: 30,
                base_seed: 100,
                collect_ld: true,
            },
        );
        let l = out.l.expect("L collected");
        let d = out.d.expect("D collected");
        // Table 1: L = 61.6 ± 3.78, D = 41.1 ± 2.73 — same ballpark.
        assert!((50.0..75.0).contains(&l.mean), "L mean {}", l.mean);
        assert!((33.0..49.0).contains(&d.mean), "D mean {}", d.mean);
        assert!(out.rate > 0.85, "rate {}", out.rate);
        assert!(out.window_us.unwrap() > l.mean, "window exceeds L");
    }

    #[test]
    fn deterministic_given_seed() {
        let s = Scenario::gedit_smp(2048);
        let cfg = McConfig {
            rounds: 15,
            base_seed: 9,
            collect_ld: false,
        };
        let a = run_mc(&s, &cfg);
        let b = run_mc(&s, &cfg);
        assert_eq!(a.successes, b.successes);
    }

    #[test]
    fn display_renders_rate() {
        let s = Scenario::gedit_smp(2048);
        let out = run_mc(
            &s,
            &McConfig {
                rounds: 5,
                base_seed: 2,
                collect_ld: false,
            },
        );
        let text = out.to_string();
        assert!(text.contains("gedit-smp"), "{text}");
        assert!(text.contains('%'), "{text}");
    }
}
