//! The Monte-Carlo experiment driver.
//!
//! Runs N independent rounds of a [`Scenario`] with per-round seeds derived
//! from a base seed, accumulating the success rate and (optionally) the
//! paper's L/D statistics from traced rounds.
//!
//! ## Parallel batches
//!
//! Rounds are independent by construction (round *i* is fully determined
//! by `base_seed + i`), so [`run_mc`] fans them across
//! [`McConfig::jobs`] worker threads. Each worker simulates a contiguous
//! block of rounds on its own recycled [`KernelPool`], emitting one
//! small observation record per round; the calling thread then folds the
//! observations **in round order** through the same accumulators the
//! serial loop uses. Because the floating-point reduction order is
//! identical, the outcome is bit-for-bit the same for every `jobs` value
//! — `jobs` trades wall-clock for cores, never results.

use crate::extract::{observe, window_length_us, WindowKind};
use serde::Serialize;
use tocttou_core::analysis::{LdEstimator, LdSample};
use tocttou_core::model::MeasuredUs;
use tocttou_core::stats::{OnlineStats, SuccessCounter};
use tocttou_os::detect::DetectionEvent;
use tocttou_os::forensics::ForensicsSnapshot;
use tocttou_os::kernel::{Checkpoint, KernelPool};
use tocttou_os::metrics::MetricsSnapshot;
use tocttou_os::vfs::Vfs;
use tocttou_sim::rng::seed_block;
use tocttou_sim::trace::Trace;
use tocttou_workloads::scenario::{Scenario, VictimSpec};

/// Options for a Monte-Carlo batch.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Number of rounds (the paper uses 500 for Figure 6).
    pub rounds: u64,
    /// Base seed; round *i* uses `base_seed + i`.
    pub base_seed: u64,
    /// Whether to trace rounds and extract L/D (slower; needed for
    /// Figure 7 and Tables 1–2).
    pub collect_ld: bool,
    /// Worker threads to fan rounds across. `1` (the default) runs the
    /// classic serial loop on the calling thread; `0` auto-detects the
    /// machine's parallelism. The outcome is bit-identical for every
    /// value.
    pub jobs: usize,
    /// Cold-boot every round instead of resuming from the warm
    /// checkpoint. The warm path (the default, `false`) simulates the
    /// seed-independent prefix once per batch and restores it per round;
    /// the cold path re-simulates it every round and is kept as the
    /// **oracle**: outcomes are byte-identical either way, asserted by
    /// `tests/checkpoint_determinism.rs`.
    pub cold: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            rounds: 200,
            base_seed: 0x7061_7065,
            collect_ld: false,
            jobs: 1,
            cold: false,
        }
    }
}

impl McConfig {
    /// Returns the config with `jobs` worker threads (`0` = auto).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Returns the config running every round from a cold boot (the
    /// warm-checkpoint oracle path).
    pub fn with_cold(mut self, cold: bool) -> Self {
        self.cold = cold;
        self
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Starting accumulator for [`detection_fingerprint_of`] and
/// [`chain_detection_fingerprints`] (the FNV-1a offset basis).
pub const DETECTION_FINGERPRINT_SEED: u64 = 0xcbf2_9ce4_8422_2325;

pub(crate) fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Order-sensitive FNV-1a fingerprint of one round's detection stream,
/// covering every field of every event (count, order, timestamps, pids,
/// paths, calls, blocked flags). Two streams collide only if they are
/// byte-for-byte identical in practice, so equality of fingerprints is the
/// determinism evidence `tests/determinism.rs` relies on.
pub fn detection_fingerprint_of(trace: &Trace<DetectionEvent>) -> u64 {
    let mut h = DETECTION_FINGERPRINT_SEED;
    for r in trace.iter() {
        let e = &r.event;
        h = fnv1a(h, &r.at.as_nanos().to_le_bytes());
        h = fnv1a(h, e.pair.check().name().as_bytes());
        h = fnv1a(h, e.pair.use_call().name().as_bytes());
        h = fnv1a(h, &e.victim.0.to_le_bytes());
        h = fnv1a(h, &e.attacker.0.to_le_bytes());
        h = fnv1a(h, e.path.as_bytes());
        h = fnv1a(h, &e.t_check.as_nanos().to_le_bytes());
        h = fnv1a(h, &e.t_use.as_nanos().to_le_bytes());
        h = fnv1a(h, e.mutation.name().as_bytes());
        h = fnv1a(h, &e.t_mutation.as_nanos().to_le_bytes());
        h = fnv1a(h, &[e.blocked as u8]);
    }
    h
}

/// Folds one round's detection fingerprint into a batch accumulator.
/// Order-sensitive: folding rounds in a different order yields a different
/// value, which is exactly what pins the cross-`jobs` event order down.
pub fn chain_detection_fingerprints(acc: u64, round_fingerprint: u64) -> u64 {
    fnv1a(acc, &round_fingerprint.to_le_bytes())
}

/// Resolves a requested job count: `0` means auto-detect, and more
/// workers than rounds is pointless.
pub fn effective_jobs(jobs: usize, rounds: u64) -> usize {
    let requested = if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    };
    requested.clamp(1, rounds.max(1).min(usize::MAX as u64) as usize)
}

/// Aggregated results of a Monte-Carlo batch.
#[derive(Debug, Clone, Serialize)]
pub struct McOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Rounds run.
    pub rounds: u64,
    /// Successes over rounds.
    pub successes: u64,
    /// Observed success rate.
    pub rate: f64,
    /// Wilson 95 % interval for the rate.
    pub rate_ci95: (f64, f64),
    /// Measured L (mean ± stdev, µs), when collected.
    pub l: Option<MeasuredUs>,
    /// Measured D (mean ± stdev, µs), when collected.
    pub d: Option<MeasuredUs>,
    /// Rounds in which the attacker detected the window.
    pub detected_rounds: u64,
    /// Mean vulnerability-window length (µs), when collected.
    pub window_us: Option<f64>,
    /// Formula (1) evaluated at the measured mean L and D.
    pub predicted_rate_ld: Option<f64>,
    /// Rounds the passive kernel race detector flagged (≥ 1
    /// [`DetectionEvent`]). Distinct from `detected_rounds`, which counts
    /// the *attacker's* window sightings.
    pub flagged_rounds: u64,
    /// Flagged rounds where the attack also succeeded (ground truth).
    pub detector_true_positives: u64,
    /// Flagged rounds where the attack did not succeed.
    pub detector_false_positives: u64,
    /// Successful rounds the detector missed.
    pub detector_false_negatives: u64,
    /// TP / (TP + FP), when any round was flagged.
    pub detector_precision: Option<f64>,
    /// TP / (TP + FN), when any round succeeded.
    pub detector_recall: Option<f64>,
    /// Mean detection latency (µs): first event's `t_use − t_mutation`,
    /// averaged over flagged rounds.
    pub detection_latency_us: Option<f64>,
    /// Chained [`detection_fingerprint_of`] over every round, in round
    /// order — the batch-level identity of the full detection stream.
    pub detection_fingerprint: u64,
    /// Kernel metrics summed over every round: scheduler counters plus
    /// syscall/semaphore/run-queue latency histograms. The merge is pure
    /// integer accumulation over key-sorted histograms, so the aggregate
    /// is bit-identical at any [`McConfig::jobs`] value.
    pub metrics: MetricsSnapshot,
    /// Race-window forensics summed over every round: window-width and
    /// near-miss (early/late) log2 histograms, strike verdict counts and
    /// the minimum observed miss distance. Merged by the same
    /// order-independent integer rules as `metrics`, so the aggregate is
    /// bit-identical at any [`McConfig::jobs`] value.
    pub forensics: ForensicsSnapshot,
}

/// Round-level detector accumulators, folded in round order alongside the
/// success counter.
#[derive(Debug, Clone, Default)]
struct DetectorTally {
    flagged: u64,
    tp: u64,
    fp: u64,
    fn_: u64,
    latency: OnlineStats,
    fingerprint: u64,
}

impl DetectorTally {
    fn new() -> Self {
        DetectorTally {
            fingerprint: DETECTION_FINGERPRINT_SEED,
            ..DetectorTally::default()
        }
    }

    fn fold(&mut self, obs: &RoundObs) {
        if obs.flagged {
            self.flagged += 1;
            if obs.success {
                self.tp += 1;
            } else {
                self.fp += 1;
            }
        } else if obs.success {
            self.fn_ += 1;
        }
        if let Some(lat) = obs.detect_latency_us {
            self.latency.push(lat);
        }
        self.fingerprint = chain_detection_fingerprints(self.fingerprint, obs.detect_fingerprint);
    }
}

impl McOutcome {
    fn from_parts(
        scenario: &Scenario,
        counter: SuccessCounter,
        ld: LdEstimator,
        windows: OnlineStats,
        detector: DetectorTally,
        metrics: MetricsSnapshot,
        forensics: ForensicsSnapshot,
    ) -> Self {
        let (l, d) = match ld.estimates() {
            Some((l, d)) => (Some(l), Some(d)),
            None => (None, None),
        };
        McOutcome {
            scenario: scenario.name.clone(),
            rounds: counter.trials(),
            successes: counter.successes(),
            rate: counter.rate(),
            rate_ci95: counter.wilson_ci95(),
            l,
            d,
            detected_rounds: ld.count(),
            window_us: (windows.count() > 0).then(|| windows.mean()),
            predicted_rate_ld: ld.predicted_success_rate(),
            flagged_rounds: detector.flagged,
            detector_true_positives: detector.tp,
            detector_false_positives: detector.fp,
            detector_false_negatives: detector.fn_,
            detector_precision: (detector.flagged > 0)
                .then(|| detector.tp as f64 / detector.flagged as f64),
            detector_recall: (counter.successes() > 0)
                .then(|| detector.tp as f64 / counter.successes() as f64),
            detection_latency_us: (detector.latency.count() > 0).then(|| detector.latency.mean()),
            detection_fingerprint: detector.fingerprint,
            metrics,
            forensics,
        }
    }
}

impl std::fmt::Display for McOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}/{} = {:.1}% [{:.1}%, {:.1}%]",
            self.scenario,
            self.successes,
            self.rounds,
            self.rate * 100.0,
            self.rate_ci95.0 * 100.0,
            self.rate_ci95.1 * 100.0
        )?;
        if let (Some(l), Some(d)) = (self.l, self.d) {
            write!(f, "  L = {l}, D = {d}")?;
        }
        Ok(())
    }
}

/// The window kind a scenario's victim defines.
pub fn window_kind_of(scenario: &Scenario) -> WindowKind {
    match &scenario.victim {
        VictimSpec::Vi(_) => WindowKind::ViCreat,
        VictimSpec::Gedit(_) => WindowKind::GeditRename,
        // Compiled victims declare their pair; a rename-check window has
        // gedit's shape (opens at a rename commit), anything else vi's.
        VictimSpec::Compiled(c) => {
            if c.pair.check() == tocttou_core::taxonomy::FsCall::Rename {
                WindowKind::GeditRename
            } else {
                WindowKind::ViCreat
            }
        }
    }
}

/// Fraction of L/D samples trimmed from each tail before estimation.
///
/// The rare round in which a background burst lands *inside* the window
/// stretches that round's t3 by the burst's length, producing an L outlier
/// an order of magnitude off the population. The paper's tiny reported
/// standard deviations (±3.78 µs for L over 1-byte runs) show such rounds
/// were not part of its averages; a symmetric 5 % trim removes them without
/// cherry-picking.
///
/// Exact contract, for `n` samples sorted by `l_us` ascending:
/// `cut = floor(n * frac)` samples are dropped from *each* tail, keeping
/// the middle `n - 2*cut` — unless `n <= 2*cut`, in which case trimming
/// would leave nothing (or is degenerate) and **all `n` samples are kept
/// untrimmed**. At 5 % that means batches of up to 19 samples are never
/// trimmed (cut = 0), a 20-sample batch loses exactly its extreme L on
/// each side (cut = 1), and the cut stays 1 until n = 40.
const LD_TRIM_FRAC: f64 = 0.05;

/// What one round contributes to the batch statistics. Workers produce
/// these; the calling thread folds them in round order.
pub(crate) struct RoundObs {
    pub(crate) success: bool,
    pub(crate) window_us: Option<f64>,
    pub(crate) sample: Option<LdSample>,
    /// Whether the kernel's passive detector emitted at least one event.
    pub(crate) flagged: bool,
    /// `t_use − t_mutation` of the first detection event (µs).
    pub(crate) detect_latency_us: Option<f64>,
    /// [`detection_fingerprint_of`] the round's detection stream.
    pub(crate) detect_fingerprint: u64,
    /// A check-use window closed this round (splitting milestone level 1;
    /// always `false` when the machine profile strips forensics).
    pub(crate) window_closed: bool,
    /// The round's closest failed strike in nanoseconds (milestone level 2
    /// is this falling under the estimator's near-miss threshold).
    pub(crate) min_miss_ns: Option<u64>,
    /// A strike landed inside a consumed window (milestone level 3: the
    /// stale binding committed, whether or not the payload succeeded).
    pub(crate) strike_hit: bool,
}

/// The per-point accumulator shared by [`run_mc`] and the sweep engine
/// (`crate::sweep`).
///
/// Byte-identity across drivers and `jobs` values hinges on two rules this
/// type centralizes: [`RoundObs`] records are folded **in round order**
/// (the floating-point reduction order is part of the result), while
/// kernel metrics merge through [`merge_metrics`](Self::merge_metrics) in
/// any order (pure integer accumulation over key-sorted histograms).
/// Any driver that honors those two rules produces the same [`McOutcome`]
/// bit for bit, regardless of how it partitions or schedules the rounds.
pub(crate) struct PointAcc {
    counter: SuccessCounter,
    samples: Vec<LdSample>,
    windows: OnlineStats,
    detector: DetectorTally,
    metrics: MetricsSnapshot,
    forensics: ForensicsSnapshot,
}

impl PointAcc {
    pub(crate) fn new() -> Self {
        PointAcc {
            counter: SuccessCounter::new(),
            samples: Vec::new(),
            windows: OnlineStats::new(),
            detector: DetectorTally::new(),
            metrics: MetricsSnapshot::default(),
            forensics: ForensicsSnapshot::default(),
        }
    }

    /// Folds one round's observation. Must be called in round order.
    pub(crate) fn fold(&mut self, obs: RoundObs) {
        self.counter.record(obs.success);
        self.detector.fold(&obs);
        if let Some(w) = obs.window_us {
            self.windows.push(w);
        }
        if let Some(s) = obs.sample {
            self.samples.push(s);
        }
    }

    /// Merges one worker block's kernel-metrics aggregate. Order-free.
    pub(crate) fn merge_metrics(&mut self, block: &MetricsSnapshot) {
        self.metrics.merge(block);
    }

    /// Merges one worker block's window-forensics aggregate. Order-free.
    pub(crate) fn merge_forensics(&mut self, block: &ForensicsSnapshot) {
        self.forensics.merge(block);
    }

    /// Trims the L/D samples and condenses everything into the outcome.
    pub(crate) fn finish(self, scenario: &Scenario) -> McOutcome {
        let ld = trimmed_estimator(self.samples, LD_TRIM_FRAC);
        McOutcome::from_parts(
            scenario,
            self.counter,
            ld,
            self.windows,
            self.detector,
            self.metrics,
            self.forensics,
        )
    }
}

/// How each round's kernel is instantiated: resumed from a shared warm
/// [`Checkpoint`] (the default), or cold-booted from the filesystem
/// template (the oracle, [`McConfig::cold`]). Both paths produce
/// byte-identical rounds; `Warm` skips the seed-independent boot prefix.
#[derive(Clone, Copy)]
pub(crate) enum RoundBoot<'a> {
    /// Resume from the batch's warm checkpoint.
    Warm(&'a Checkpoint),
    /// Cold-boot from the filesystem template.
    Cold(&'a Vfs),
}

impl<'a> RoundBoot<'a> {
    /// Picks the boot mode for a batch: one warm checkpoint per batch
    /// unless the config demands the cold oracle.
    pub(crate) fn for_batch(
        scenario: &Scenario,
        template: &'a Vfs,
        ck: &'a mut Option<Checkpoint>,
        cold: bool,
    ) -> Self {
        if cold {
            RoundBoot::Cold(template)
        } else {
            RoundBoot::Warm(ck.insert(scenario.round_checkpoint(template)))
        }
    }
}

/// Simulates one round on pooled buffers and extracts its observation.
///
/// The round's kernel metrics aren't extracted here: the pool is created
/// with [`KernelPool::retain_metrics`], so they accumulate in place across
/// the worker's rounds and the caller snapshots the total once per block —
/// zero per-round cost, bit-identical to a per-round fold (the merge is
/// pure integer accumulation).
pub(crate) fn run_one_round(
    scenario: &Scenario,
    boot: RoundBoot<'_>,
    pool: KernelPool,
    seed: u64,
    kind: WindowKind,
    collect_ld: bool,
) -> (RoundObs, KernelPool) {
    let mut handles = match boot {
        RoundBoot::Warm(ck) => scenario.build_from_checkpoint(ck, seed, collect_ld, pool),
        RoundBoot::Cold(template) => scenario.build_pooled(seed, collect_ld, template, pool),
    };
    let result = scenario.finish_round(&mut handles);
    let milestones = handles.kernel.forensics().round_milestones();
    let detections = handles.kernel.detections();
    let mut obs = RoundObs {
        success: result.success,
        window_us: None,
        sample: None,
        flagged: !detections.is_empty(),
        detect_latency_us: detections
            .iter()
            .next()
            .map(|r| r.event.latency().as_micros_f64()),
        detect_fingerprint: detection_fingerprint_of(detections),
        window_closed: milestones.window_closed,
        min_miss_ns: milestones.min_miss_ns,
        strike_hit: milestones.strike_hit,
    };
    if collect_ld {
        if let Some(o) = observe(
            handles.kernel.trace(),
            handles.victim,
            handles.attackers[0],
            kind,
            &scenario.layout.doc,
        ) {
            obs.window_us = Some(window_length_us(&o));
            obs.sample = o.ld_sample();
        }
    }
    (obs, handles.kernel.recycle())
}

/// Runs the batch.
///
/// With `cfg.jobs > 1` the rounds are simulated on worker threads; the
/// outcome is bit-identical to the serial (`jobs = 1`) run — see the
/// module docs for why.
pub fn run_mc(scenario: &Scenario, cfg: &McConfig) -> McOutcome {
    let kind = window_kind_of(scenario);
    let template = scenario.template_vfs();
    let mut ck = None;
    let boot = RoundBoot::for_batch(scenario, &template, &mut ck, cfg.cold);
    let jobs = effective_jobs(cfg.jobs, cfg.rounds);

    // The single fold used by both paths: per-round op order on the
    // accumulators is what makes serial and parallel runs bit-identical.
    // (Kernel metrics don't ride this fold: their merge is order-
    // *independent* integer accumulation, so each worker keeps one running
    // aggregate and the block aggregates combine at the end.)
    let mut acc = PointAcc::new();

    if jobs <= 1 {
        let mut pool = KernelPool::new().retain_metrics();
        for seed in seed_block(cfg.base_seed, 0, cfg.rounds) {
            let (obs, returned) = run_one_round(scenario, boot, pool, seed, kind, cfg.collect_ld);
            pool = returned;
            acc.fold(obs);
        }
        acc.merge_metrics(&pool.metrics().snapshot());
        acc.merge_forensics(&pool.forensics().snapshot());
    } else {
        // One contiguous block of rounds per worker; blocks come back in
        // worker order, so flattening yields observations in round order.
        let block = cfg.rounds.div_ceil(jobs as u64);
        let blocks: Vec<(u64, u64)> = (0..jobs as u64)
            .map(|w| (w * block, ((w + 1) * block).min(cfg.rounds)))
            .filter(|(start, end)| start < end)
            .collect();
        let per_block: Vec<(Vec<RoundObs>, MetricsSnapshot, ForensicsSnapshot)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = blocks
                    .iter()
                    .map(|&(start, end)| {
                        scope.spawn(move || {
                            let mut pool = KernelPool::new().retain_metrics();
                            let mut out = Vec::with_capacity((end - start) as usize);
                            for seed in seed_block(cfg.base_seed, start, end) {
                                let (obs, returned) =
                                    run_one_round(scenario, boot, pool, seed, kind, cfg.collect_ld);
                                pool = returned;
                                out.push(obs);
                            }
                            let (m, f) = (pool.metrics().snapshot(), pool.forensics().snapshot());
                            (out, m, f)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("Monte-Carlo worker panicked"))
                    .collect()
            });
        for (block_obs, block_metrics, block_forensics) in per_block {
            acc.merge_metrics(&block_metrics);
            acc.merge_forensics(&block_forensics);
            for obs in block_obs {
                acc.fold(obs);
            }
        }
    }

    acc.finish(scenario)
}

/// Builds an estimator from samples with a symmetric fraction trimmed from
/// each tail of the L distribution.
fn trimmed_estimator(mut samples: Vec<tocttou_core::analysis::LdSample>, frac: f64) -> LdEstimator {
    samples.sort_by(|a, b| a.l_us.total_cmp(&b.l_us));
    let cut = (samples.len() as f64 * frac).floor() as usize;
    let kept = if samples.len() > 2 * cut {
        &samples[cut..samples.len() - cut]
    } else {
        &samples[..]
    };
    kept.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tocttou_workloads::scenario::Scenario;

    #[test]
    fn mc_counts_rounds_and_rates() {
        let s = Scenario::vi_smp(20 * 1024);
        let out = run_mc(
            &s,
            &McConfig {
                rounds: 10,
                base_seed: 1,
                collect_ld: false,
                jobs: 1,
                cold: false,
            },
        );
        assert_eq!(out.rounds, 10);
        assert!(out.rate > 0.9, "vi SMP ~100%: {}", out.rate);
        assert!(out.l.is_none(), "no L/D without collect_ld");
        // Metrics ride along on every batch.
        assert!(out.metrics.counters.context_switches >= 10 * 2);
        assert!(out.metrics.counters.vfs_ops > 0);
        assert!(out.metrics.total_samples() > 0);
    }

    #[test]
    fn metrics_off_profile_folds_to_empty() {
        let mut s = Scenario::vi_smp(20 * 1024);
        s.machine = s.machine.without_metrics();
        let out = run_mc(
            &s,
            &McConfig {
                rounds: 5,
                base_seed: 1,
                collect_ld: false,
                jobs: 1,
                cold: false,
            },
        );
        assert!(out.rate > 0.9, "stripping metrics must not change results");
        assert_eq!(out.metrics.counters.context_switches, 0);
        assert!(out.metrics.hists.is_empty());
    }

    #[test]
    fn mc_collects_ld_for_table1_shape() {
        let s = Scenario::vi_smp(1);
        let out = run_mc(
            &s,
            &McConfig {
                rounds: 30,
                base_seed: 100,
                collect_ld: true,
                jobs: 1,
                cold: false,
            },
        );
        let l = out.l.expect("L collected");
        let d = out.d.expect("D collected");
        // Table 1: L = 61.6 ± 3.78, D = 41.1 ± 2.73 — same ballpark.
        assert!((50.0..75.0).contains(&l.mean), "L mean {}", l.mean);
        assert!((33.0..49.0).contains(&d.mean), "D mean {}", d.mean);
        assert!(out.rate > 0.85, "rate {}", out.rate);
        assert!(out.window_us.unwrap() > l.mean, "window exceeds L");
    }

    #[test]
    fn deterministic_given_seed() {
        let s = Scenario::gedit_smp(2048);
        let cfg = McConfig {
            rounds: 15,
            base_seed: 9,
            collect_ld: false,
            jobs: 1,
            cold: false,
        };
        let a = run_mc(&s, &cfg);
        let b = run_mc(&s, &cfg);
        assert_eq!(a.successes, b.successes);
    }

    #[test]
    fn parallel_jobs_match_serial_bitwise() {
        let s = Scenario::vi_smp(1);
        let base = McConfig {
            rounds: 24,
            base_seed: 4242,
            collect_ld: true,
            jobs: 1,
            cold: false,
        };
        let serial = run_mc(&s, &base);
        for jobs in [2, 3, 4] {
            let par = run_mc(&s, &base.clone().with_jobs(jobs));
            assert_eq!(
                serde_json::to_string(&serial).unwrap(),
                serde_json::to_string(&par).unwrap(),
                "jobs={jobs} diverged from serial"
            );
        }
    }

    #[test]
    fn effective_jobs_clamps_and_autodetects() {
        assert_eq!(effective_jobs(1, 100), 1);
        assert_eq!(effective_jobs(8, 3), 3, "never more workers than rounds");
        assert_eq!(effective_jobs(4, 0), 1, "zero rounds still needs one job");
        assert!(effective_jobs(0, 1000) >= 1, "auto-detect is at least 1");
    }

    /// `n` samples with L = 0, 1, ..., n-1 µs (already distinct and
    /// sortable), D constant.
    fn samples(n: usize) -> Vec<tocttou_core::analysis::LdSample> {
        (0..n)
            .map(|i| tocttou_core::analysis::LdSample {
                l_us: i as f64,
                d_us: 10.0,
            })
            .collect()
    }

    #[test]
    fn trim_keeps_everything_below_the_first_cut() {
        // floor(n * 0.05) = 0 for n < 20, so nothing is trimmed.
        for n in [0usize, 1, 2] {
            let est = trimmed_estimator(samples(n), LD_TRIM_FRAC);
            assert_eq!(est.count(), n as u64, "n={n} must keep all samples");
        }
    }

    #[test]
    fn trim_boundary_at_twenty_samples() {
        // n = 20 is the first batch size where floor(n * 0.05) = 1: the
        // single smallest and single largest L are dropped.
        let est = trimmed_estimator(samples(20), LD_TRIM_FRAC);
        assert_eq!(est.count(), 18);
        let (l, _) = est.raw();
        // L values 1..=18 survive; their mean pins down *which* samples
        // were dropped, not just how many.
        assert!((l.mean() - 9.5).abs() < 1e-12, "kept middle: {}", l.mean());

        // n = 21 still has cut = 1 (floor(1.05)).
        let est = trimmed_estimator(samples(21), LD_TRIM_FRAC);
        assert_eq!(est.count(), 19);
        let (l, _) = est.raw();
        assert!((l.mean() - 10.0).abs() < 1e-12, "kept 1..=19: {}", l.mean());
    }

    #[test]
    fn trim_degenerate_cut_keeps_all() {
        // When n <= 2*cut the trim would leave nothing; the contract is
        // to keep every sample instead.
        let est = trimmed_estimator(samples(2), 0.5);
        assert_eq!(est.count(), 2, "n == 2*cut keeps all");
        let est = trimmed_estimator(samples(1), 1.0);
        assert_eq!(est.count(), 1, "n < 2*cut impossible to trim, keeps all");
        // One above the degenerate point trims normally again.
        let est = trimmed_estimator(samples(3), 0.5);
        assert_eq!(est.count(), 1, "n = 3, cut = 1 keeps the median");
    }

    #[test]
    fn detector_verdicts_fold_into_outcome() {
        let s = Scenario::vi_smp(20 * 1024);
        let out = run_mc(
            &s,
            &McConfig {
                rounds: 15,
                base_seed: 3,
                collect_ld: false,
                jobs: 1,
                cold: false,
            },
        );
        assert!(out.flagged_rounds > 0, "vi SMP rounds must be flagged");
        assert_eq!(
            out.detector_true_positives + out.detector_false_positives,
            out.flagged_rounds
        );
        assert_eq!(
            out.detector_true_positives + out.detector_false_negatives,
            out.successes
        );
        assert!(out.detector_precision.is_some());
        assert!(out.detection_latency_us.unwrap() > 0.0);
        assert_ne!(
            out.detection_fingerprint, DETECTION_FINGERPRINT_SEED,
            "non-empty stream must move the fingerprint"
        );
    }

    #[test]
    fn detection_fingerprint_is_order_sensitive() {
        let a = chain_detection_fingerprints(DETECTION_FINGERPRINT_SEED, 1);
        let a = chain_detection_fingerprints(a, 2);
        let b = chain_detection_fingerprints(DETECTION_FINGERPRINT_SEED, 2);
        let b = chain_detection_fingerprints(b, 1);
        assert_ne!(a, b, "swapping rounds must change the chained value");
    }

    #[test]
    fn display_renders_rate() {
        let s = Scenario::gedit_smp(2048);
        let out = run_mc(
            &s,
            &McConfig {
                rounds: 5,
                base_seed: 2,
                collect_ld: false,
                jobs: 1,
                cold: false,
            },
        );
        let text = out.to_string();
        assert!(text.contains("gedit-smp"), "{text}");
        assert!(text.contains('%'), "{text}");
    }
}
