//! Extraction of the paper's measured quantities from kernel traces.
//!
//! Implements the estimators of Sections 3.4, 5 and 6.1 against the
//! simulator's event stream:
//!
//! * the **window-open point** (`creat` commit for vi, the into-place
//!   `rename` commit for gedit) — the moment the root-owned name becomes
//!   observable;
//! * **t1** — "the earliest observed start time of stat which indicates a
//!   vulnerability window", i.e. the enter time of the first attacker `stat`
//!   whose directory sample falls at or after the window-open point (the
//!   paper notes this estimate is conservative — and Table 2 shows the
//!   resulting under-prediction, which we reproduce);
//! * **D** — for gedit, "the interval between the start of stat and the
//!   start of unlink"; for vi, the detection-loop period (mean inter-`stat`
//!   interval);
//! * **t3** — the enter time of the victim's first post-window use call
//!   (`chmod` for gedit, `chown` for vi), giving `t2 = t3 − D` and
//!   `L = t2 − t1`.

use tocttou_core::analysis::LdSample;
use tocttou_os::event::OsEvent;
use tocttou_os::ids::Pid;
use tocttou_os::process::SyscallName;
use tocttou_sim::time::SimTime;
use tocttou_sim::trace::Trace;

/// Which victim's window shape to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// vi: window opens at the `creat` commit, closes at `chown`.
    ViCreat,
    /// gedit: window opens at the into-place `rename` commit, closes at
    /// `chmod`/`chown`.
    GeditRename,
}

/// Per-round observation of the race, in the paper's terms.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackObservation {
    /// When the root-owned name became observable.
    pub visible_at: SimTime,
    /// Start of the first detecting `stat` (t1), if the attacker detected.
    pub t1: Option<SimTime>,
    /// The attacker's D, µs (definition depends on [`WindowKind`]).
    pub d_us: Option<f64>,
    /// Start of the victim's first use call after the window (t3).
    pub t3: SimTime,
}

impl AttackObservation {
    /// The per-round `(L, D)` sample, when the attacker detected the window.
    pub fn ld_sample(&self) -> Option<LdSample> {
        let t1 = self.t1?;
        let d = self.d_us?;
        if d <= 0.0 {
            return None;
        }
        Some(LdSample::from_gedit_times(
            t1.as_micros_f64(),
            self.t3.as_micros_f64(),
            d,
        ))
    }
}

/// Extracts the round's observation from a kernel trace.
///
/// `doc_path` is the watched file (used to pick the right `rename` for
/// gedit and the attacker's calls among same-named syscalls). Returns
/// `None` if the window never opened or the victim never issued the use
/// call (e.g. the round timed out).
pub fn observe(
    trace: &Trace<OsEvent>,
    victim: Pid,
    attacker: Pid,
    kind: WindowKind,
    doc_path: &str,
) -> Option<AttackObservation> {
    let records: Vec<_> = trace.iter().collect();

    // --- window-open commit ------------------------------------------------
    let visible_at = match kind {
        WindowKind::ViCreat => {
            // First OpenCreate commit by the victim *on the doc path* (vi
            // also creates nothing else, but be precise: match the enter).
            commit_after_enter(&records, victim, SyscallName::OpenCreate, Some(doc_path))?
        }
        WindowKind::GeditRename => {
            commit_after_enter(&records, victim, SyscallName::Rename, Some(doc_path))?
        }
    };

    // --- t3: the victim's first use call after the window opens -------------
    let use_call = match kind {
        WindowKind::ViCreat => SyscallName::Chown,
        WindowKind::GeditRename => SyscallName::Chmod,
    };
    let t3 = records
        .iter()
        .find(|r| {
            r.at >= visible_at
                && matches!(
                    &r.event,
                    OsEvent::SyscallEnter { pid, call, .. } if *pid == victim && *call == use_call
                )
        })
        .map(|r| r.at)?;
    // Window close: the victim's chown commit restores user ownership; any
    // stat sampling after it observes a closed window.
    let close_at = records
        .iter()
        .find(|r| {
            r.at >= visible_at
                && matches!(
                    &r.event,
                    OsEvent::Commit { pid, call: SyscallName::Chown } if *pid == victim
                )
        })
        .map(|r| r.at)
        .unwrap_or(SimTime::MAX);

    // --- detecting stat: first whose directory sample (Commit) lands inside
    // the open window [visible_at, close_at).
    let mut detect_enter = None;
    let mut detect_sample = None;
    let mut last_stat_enter: Option<SimTime> = None;
    for r in &records {
        match &r.event {
            OsEvent::SyscallEnter {
                pid,
                call: SyscallName::Stat,
                ..
            } if *pid == attacker => {
                last_stat_enter = Some(r.at);
            }
            OsEvent::Commit {
                pid,
                call: SyscallName::Stat,
            } if *pid == attacker && r.at >= visible_at && r.at < close_at => {
                detect_enter = last_stat_enter;
                detect_sample = Some(r.at);
            }
            _ => {}
        }
        if detect_enter.is_some() {
            break;
        }
    }

    // --- t1 --------------------------------------------------------------
    // Section 3.4 defines t1 as "the earliest start time for a successful
    // detection" — a property of the victim. For vi we can compute it
    // structurally: the earliest stat start whose sample still lands at the
    // window-open point, i.e. visible_at minus the stat's sample offset.
    // For gedit we reproduce the paper's *conservative* estimator ("the
    // earliest observed start time of stat which indicates a vulnerability
    // window"), which is what makes Table 2's prediction undershoot.
    let t1 = match kind {
        WindowKind::ViCreat => match (detect_enter, detect_sample) {
            (Some(e), Some(s)) => {
                let head = s - e;
                Some(SimTime::from_nanos(
                    visible_at.as_nanos().saturating_sub(head.as_nanos()),
                ))
            }
            _ => None,
        },
        WindowKind::GeditRename => detect_enter,
    };

    // --- D -------------------------------------------------------------------
    let d_us = match kind {
        WindowKind::GeditRename => {
            // Interval from the detecting stat's start to the unlink start.
            // The paper's tracer sees the unlink *after* the libc page fault
            // (the fault happens at the call instruction, before the kernel
            // entry), so a trap coinciding with the unlink entry counts
            // toward D. `None` when the round never detected or attacked.
            detect_enter.and_then(|t1v| {
                let unlink_enter = records.iter().find(|r| {
                    r.at >= t1v
                        && matches!(
                            &r.event,
                            OsEvent::SyscallEnter { pid, call: SyscallName::Unlink, path: Some(p) }
                                if *pid == attacker && p == doc_path
                        )
                })?;
                let trap_us: f64 = records
                    .iter()
                    .filter_map(|r| match &r.event {
                        OsEvent::Trap { pid, dur }
                            if *pid == attacker && r.at == unlink_enter.at =>
                        {
                            Some(dur.as_micros_f64())
                        }
                        _ => None,
                    })
                    .sum();
                Some((unlink_enter.at - t1v).as_micros_f64() + trap_us)
            })
        }
        WindowKind::ViCreat => {
            // Detection-loop period: mean of inter-stat intervals before
            // detection (all stats if no detection).
            let enters: Vec<SimTime> = records
                .iter()
                .filter_map(|r| match &r.event {
                    OsEvent::SyscallEnter {
                        pid,
                        call: SyscallName::Stat,
                        ..
                    } if *pid == attacker && detect_enter.is_none_or(|t| r.at <= t) => Some(r.at),
                    _ => None,
                })
                .collect();
            if enters.len() >= 2 {
                // The detection loop has a constant period, so the smallest
                // observed interval is the period itself — robust against
                // both the cold-page trap in the first interval and
                // background-activity pauses stretching later ones.
                let deltas: Vec<f64> = enters
                    .windows(2)
                    .skip(1)
                    .map(|w| (w[1] - w[0]).as_micros_f64())
                    .collect();
                if deltas.is_empty() {
                    Some((enters[1] - enters[0]).as_micros_f64())
                } else {
                    deltas.iter().copied().reduce(f64::min)
                }
            } else {
                None
            }
        }
    };

    Some(AttackObservation {
        visible_at,
        t1,
        d_us,
        t3,
    })
}

/// Finds the commit of the first `call` by `pid` whose *enter* matches the
/// optional path, and returns the commit time.
fn commit_after_enter(
    records: &[&tocttou_sim::trace::TraceRecord<OsEvent>],
    pid: Pid,
    call: SyscallName,
    path: Option<&str>,
) -> Option<SimTime> {
    let mut in_matching_call = false;
    for r in records {
        match &r.event {
            OsEvent::SyscallEnter {
                pid: p,
                call: c,
                path: ep,
            } if *p == pid && *c == call => {
                in_matching_call = path.is_none() || ep.as_deref() == path;
            }
            OsEvent::Commit { pid: p, call: c } if *p == pid && *c == call && in_matching_call => {
                return Some(r.at);
            }
            OsEvent::SyscallExit {
                pid: p, call: c, ..
            } if *p == pid && *c == call => {
                in_matching_call = false;
            }
            _ => {}
        }
    }
    None
}

/// Window length in µs: window-open commit to the victim's use-call enter.
pub fn window_length_us(obs: &AttackObservation) -> f64 {
    (obs.t3 - obs.visible_at).as_micros_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tocttou_workloads::scenario::Scenario;

    #[test]
    fn extracts_vi_smp_observation() {
        let s = Scenario::vi_smp(1);
        let (r, h) = s.run_traced(77);
        assert!(r.victim_exited);
        let obs = observe(
            h.kernel.trace(),
            h.victim,
            h.attackers[0],
            WindowKind::ViCreat,
            "/home/user/doc.txt",
        )
        .expect("window observed");
        // Table 1 calibration: D ≈ 41 µs, L ≈ 62 µs.
        let d = obs.d_us.expect("attacker spun");
        assert!((30.0..55.0).contains(&d), "D = {d}");
        if let Some(ld) = obs.ld_sample() {
            assert!((40.0..95.0).contains(&ld.l_us), "L = {}", ld.l_us);
        }
        assert!(obs.t3 > obs.visible_at);
    }

    #[test]
    fn extracts_gedit_smp_observation() {
        let s = Scenario::gedit_smp(2048);
        // Find a detecting round.
        for seed in 0..20 {
            let (_, h) = s.run_traced(9_000 + seed);
            let obs = observe(
                h.kernel.trace(),
                h.victim,
                h.attackers[0],
                WindowKind::GeditRename,
                "/home/user/doc.txt",
            )
            .expect("window must open every round");
            if let Some(ld) = obs.ld_sample() {
                // Table 2 ballpark: D ≈ 33 µs, L smallish.
                assert!((20.0..50.0).contains(&ld.d_us), "D = {}", ld.d_us);
                assert!(ld.l_us < 60.0, "L = {}", ld.l_us);
                return;
            }
        }
        panic!("no detecting round in 20 seeds");
    }

    #[test]
    fn window_length_matches_shape() {
        let s = Scenario::vi_smp(100 * 1024);
        let (_, h) = s.run_traced(5);
        let obs = observe(
            h.kernel.trace(),
            h.victim,
            h.attackers[0],
            WindowKind::ViCreat,
            "/home/user/doc.txt",
        )
        .unwrap();
        let w = window_length_us(&obs);
        // 100 KB at 17 µs/KB ≈ 1.7 ms.
        assert!((1_400.0..2_300.0).contains(&w), "window {w}");
    }

    #[test]
    fn undetected_round_has_no_ld() {
        // gedit on the uniprocessor: the attacker never runs in-window.
        let s = Scenario::gedit_uniprocessor(2048);
        let (_, h) = s.run_traced(3);
        let obs = observe(
            h.kernel.trace(),
            h.victim,
            h.attackers[0],
            WindowKind::GeditRename,
            "/home/user/doc.txt",
        )
        .expect("window still opens");
        assert!(obs.ld_sample().is_none(), "no detection on uniprocessor");
    }
}
