//! `campaign` — resumable sweep campaigns over a content-addressed store.
//!
//! ```text
//! campaign --store DIR --grid <d|size|cpus|pipelined|swap|taxonomy>
//!          [--family F] [--size-kb N] [--points N] [--rounds N] [--seed S]
//!          [--jobs J] [--block N] [--max-blocks N] [--out DIR] [--cold]
//! campaign --store DIR --status
//! ```
//!
//! Computes whichever seed blocks of the grid the store does not already
//! hold, appending each finished block to `DIR/blocks.jsonl` as it lands
//! (so a killed run loses at most the block in flight), then streams the
//! aggregate out of the store once it covers the whole grid. The aggregate
//! is written as `campaign.json` + `CAMPAIGN.md` under the output
//! directory (default `target/experiments`) and is byte-identical to the
//! one-shot `sweep` binary on the same grid (without `--collect-ld`) —
//! `cmp campaign.json sweep.json` is the oracle check CI runs.
//!
//! `--max-blocks N` stops after N newly computed blocks, leaving a valid
//! partial store for a later run to resume; `--status` prints the store's
//! manifest and exits. Cache keys cover the scenario content (including
//! the cost model) and the engine schema version, so editing either simply
//! invalidates the affected blocks on the next run — `--compact` rewrites
//! `blocks.jsonl` keeping only the records the given grid still addresses,
//! reclaiming the space of superseded and orphaned blocks in place.

use tocttou_experiments::campaign::{compact_store, read_manifest, run_campaign, CampaignConfig};
use tocttou_experiments::cli::{CommonArgs, GridArgs};
use tocttou_experiments::report::Report;

#[derive(Debug)]
struct Args {
    common: CommonArgs,
    grid: GridArgs,
    store: String,
    out: String,
    block: u64,
    max_blocks: Option<u64>,
    status: bool,
    compact: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut common = CommonArgs::default();
    let mut grid = GridArgs::default();
    let mut store = None;
    let mut out = "target/experiments".to_string();
    let mut block = 100u64;
    let mut max_blocks = None;
    let mut status = false;
    let mut compact = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if common.accept(&arg, &mut it)? || grid.accept(&arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--store" => store = Some(it.next().ok_or("--store needs a value")?),
            "--out" => out = it.next().ok_or("--out needs a value")?,
            "--block" => {
                let raw = it.next().ok_or("--block needs a value")?;
                block = raw
                    .parse()
                    .map_err(|e| format!("invalid --block value {raw:?}: {e}"))?;
            }
            "--max-blocks" => {
                let raw = it.next().ok_or("--max-blocks needs a value")?;
                max_blocks = Some(
                    raw.parse()
                        .map_err(|e| format!("invalid --max-blocks value {raw:?}: {e}"))?,
                );
            }
            "--status" => status = true,
            "--compact" => compact = true,
            "--help" | "-h" => {
                return Err(
                    "usage: campaign --store DIR --grid <d|size|cpus|pipelined|swap|taxonomy> \
                     [--family F] [--size-kb N] [--points N] [--rounds N] [--seed S] [--jobs J] \
                     [--block N] [--max-blocks N] [--out DIR] [--cold] [--compact] \
                     | campaign --store DIR --status"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        common,
        grid,
        store: store.ok_or("missing --store DIR")?,
        out,
        block,
        max_blocks,
        status,
        compact,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let store = std::path::Path::new(&args.store);

    if args.status {
        match read_manifest(store) {
            Ok(Some(manifest)) => println!("{manifest}"),
            Ok(None) => println!("campaign store: no manifest at {}", store.display()),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.block == 0 {
        eprintln!("invalid --block 0: block size must be at least 1");
        std::process::exit(2);
    }
    let grid = match args.grid.build_grid() {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if grid.is_empty() {
        eprintln!("empty grid: no points to campaign over");
        std::process::exit(3);
    }
    let mut cfg = CampaignConfig {
        grid,
        block: args.block,
        max_blocks: args.max_blocks,
        cold: args.common.cold,
        ..CampaignConfig::default()
    };
    args.common
        .apply(&mut cfg.rounds, &mut cfg.base_seed, &mut cfg.jobs);

    if args.compact {
        match compact_store(store, &cfg) {
            Ok(stats) => println!("{stats}"),
            Err(e) => {
                eprintln!("compaction failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let outcome = match run_campaign(store, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{outcome}");

    match outcome.aggregate {
        Some(aggregate) => {
            println!("{aggregate}");
            let mut report = Report::new(&args.out).expect("create output directory");
            report
                .add("campaign", &aggregate)
                .expect("write campaign.json");
            let path = report
                .write_combined("CAMPAIGN.md")
                .expect("write CAMPAIGN.md");
            eprintln!("wrote {}", path.display());
        }
        None => {
            eprintln!(
                "store incomplete ({} blocks remaining); re-run without --max-blocks to finish",
                outcome.remaining_blocks
            );
        }
    }
}
