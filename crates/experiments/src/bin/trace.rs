//! `trace` — render the event timeline of one scenario round.
//!
//! ```text
//! trace <scenario> [--seed S] [--width W] [--find success|failure] [--jobs J]
//!                  [--export PATH] [--perfetto PATH]
//!
//! scenarios: vi-uni vi-smp vi-smp-1b vi-hardlink-smp gedit-uni gedit-smp
//!            gedit-mc-v1 gedit-mc-v2 pipelined
//! ```
//!
//! Prints the round outcome and a Figure 8/10-style ASCII timeline of the
//! victim and attacker(s). With `--find`, seeds are scanned (from `--seed`)
//! until a round with the requested outcome turns up; `--jobs` fans the
//! scan across worker threads and still reports the lowest matching seed.
//! `--export` additionally writes the round as JSONL — header, every kernel
//! event, every detection, and the round's metrics snapshot. `--perfetto`
//! re-runs the round with span tracing armed and writes a Chrome
//! trace-event JSON file (per-CPU tracks, semaphore holds, race windows,
//! strike and detection markers) loadable in `ui.perfetto.dev` or
//! `chrome://tracing`; both exports compose in one invocation.

use tocttou_experiments::cli::CommonArgs;
use tocttou_experiments::export::export_jsonl;
use tocttou_experiments::perfetto::export_perfetto;
use tocttou_experiments::timeline::Timeline;
use tocttou_sim::time::{SimDuration, SimTime};
use tocttou_workloads::scenario::Scenario;

fn scenario_by_name(name: &str) -> Option<Scenario> {
    Some(match name {
        "vi-uni" => Scenario::vi_uniprocessor(100 * 1024),
        "vi-smp" => Scenario::vi_smp(100 * 1024),
        "vi-smp-1b" => Scenario::vi_smp(1),
        "vi-hardlink-smp" => Scenario::hardlink_vi_smp(100 * 1024),
        "gedit-uni" => Scenario::gedit_uniprocessor(2048),
        "gedit-smp" => Scenario::gedit_smp(2048),
        "gedit-mc-v1" => Scenario::gedit_multicore_v1(2048),
        "gedit-mc-v2" => Scenario::gedit_multicore_v2(2048),
        "pipelined" => Scenario::pipelined_attack(100 * 1024),
        _ => return None,
    })
}

/// Scans `count` seeds from `start` for the first round whose success flag
/// equals `wanted`, fanning contiguous chunks across `jobs` threads. The
/// lowest matching seed wins regardless of thread count, because the first
/// match of the lowest-numbered chunk with any match is the global first.
fn scan_seeds(
    scenario: &Scenario,
    start: u64,
    count: u64,
    wanted: bool,
    jobs: usize,
) -> Option<u64> {
    let jobs = tocttou_experiments::monte_carlo::effective_jobs(jobs, count);
    if jobs <= 1 {
        return (start..start + count).find(|&s| scenario.run_round(s).success == wanted);
    }
    let chunk = count.div_ceil(jobs as u64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs as u64)
            .map(|w| {
                let lo = start + w * chunk;
                let hi = (lo + chunk).min(start + count);
                scope.spawn(move || (lo..hi).find(|&s| scenario.run_round(s).success == wanted))
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("seed-scan worker panicked"))
            .next()
    })
}

fn main() {
    let mut name = None;
    let mut common = CommonArgs::default();
    let mut width = 110usize;
    let mut find: Option<bool> = None;
    let mut export: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match common.accept(&arg, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        match arg.as_str() {
            "--width" => width = it.next().and_then(|v| v.parse().ok()).unwrap_or(width),
            "--export" => export = it.next(),
            "--find" => {
                find = match it.next().as_deref() {
                    Some("success") => Some(true),
                    Some("failure") => Some(false),
                    _ => None,
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace <vi-uni|vi-smp|vi-smp-1b|vi-hardlink-smp|gedit-uni|gedit-smp|gedit-mc-v1|gedit-mc-v2|pipelined> [--seed S] [--width W] [--find success|failure] [--jobs J] [--export PATH] [--perfetto PATH]"
                );
                return;
            }
            other => name = Some(other.to_string()),
        }
    }
    // A timeline shows one round; `--rounds` exists only for flag parity.
    let seed = common.seed.unwrap_or(1);
    let jobs = common.jobs.unwrap_or(1);
    let Some(name) = name else {
        eprintln!("missing scenario name (try --help)");
        std::process::exit(2);
    };
    let Some(mut scenario) = scenario_by_name(&name) else {
        eprintln!("unknown scenario {name:?} (try --help)");
        std::process::exit(2);
    };
    if common.perfetto.is_some() {
        // Arm span tracing so the Perfetto view gets semaphore-hold and
        // window spans; the round itself stays deterministic either way.
        scenario.machine = scenario.machine.clone().with_spans();
    }

    let (result, mut handles, used_seed) = match find {
        None => {
            let (r, h) = scenario.run_traced(seed);
            (r, h, seed)
        }
        Some(wanted) => match scan_seeds(&scenario, seed, 500, wanted, jobs) {
            Some(s) => {
                let (r, h) = scenario.run_traced(s);
                (r, h, s)
            }
            None => {
                eprintln!(
                    "no {} round within 500 seeds",
                    if wanted { "successful" } else { "failed" }
                );
                std::process::exit(1);
            }
        },
    };

    println!(
        "{} seed {}: {} after {}",
        scenario.name,
        used_seed,
        if result.success {
            "ATTACK SUCCEEDED"
        } else {
            "attack failed"
        },
        result.elapsed
    );
    // Window the chart around the victim's save (skip the idle prologue).
    let first_syscall = handles
        .kernel
        .trace()
        .iter()
        .find(|r| matches!(r.event, tocttou_os::OsEvent::SyscallEnter { .. }))
        .map(|r| r.at)
        .unwrap_or(SimTime::ZERO);
    let origin = SimTime::from_nanos(
        first_syscall
            .as_nanos()
            .saturating_sub(SimDuration::from_micros(10).as_nanos()),
    );
    let mut procs: Vec<(tocttou_os::Pid, &str)> = vec![(handles.victim, "victim")];
    let labels = ["attacker", "attacker-2"];
    for (i, pid) in handles.attackers.iter().enumerate() {
        procs.push((*pid, labels.get(i).copied().unwrap_or("attacker-n")));
    }
    let tl = Timeline::from_trace(handles.kernel.trace(), &procs, origin, handles.kernel.now());
    print!("{}", tl.render_ascii(width));

    if let Some(path) = export {
        let file = std::fs::File::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        let mut w = std::io::BufWriter::new(file);
        let lines = export_jsonl(&mut w, &scenario.name, used_seed, &handles.kernel)
            .and_then(|n| std::io::Write::flush(&mut w).map(|()| n))
            .unwrap_or_else(|e| {
                eprintln!("export to {path} failed: {e}");
                std::process::exit(1);
            });
        eprintln!("exported {lines} JSONL records to {path}");
    }

    if let Some(path) = &common.perfetto {
        // Classify any still-open windows/strikes so the trace shows them.
        handles.kernel.forensics_mut().flush();
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        let mut w = std::io::BufWriter::new(file);
        let events = export_perfetto(&mut w, &scenario.name, used_seed, &handles.kernel, &procs)
            .and_then(|n| std::io::Write::flush(&mut w).map(|()| n))
            .unwrap_or_else(|e| {
                eprintln!("perfetto export to {path} failed: {e}");
                std::process::exit(1);
            });
        eprintln!("exported {events} trace events to {path}");
    }
}
