//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <exhibit>... [--rounds N] [--seed S] [--jobs J] [--cold] [--out DIR]
//!
//! exhibits: fig6 fig7 table1 table2 fig8 fig10 fig11 headline defense detect
//!           profile pairs taxonomy anatomy maze lddist all
//!
//! `--detect` is shorthand for the `detect` exhibit (the passive race
//! detector scored against Monte-Carlo ground truth); `--profile` likewise
//! selects the kernel observability scorecard (semaphore contention,
//! syscall latency, scheduler counters); `--anatomy` the race-window
//! anatomy scorecard (window widths, strike offsets and near-miss
//! distributions over the DSL taxonomy library).
//! ```
//!
//! Each exhibit prints its rows to stdout and writes `<exhibit>.json` plus a
//! combined `REPORT.md` under the output directory (default
//! `target/experiments`).

use tocttou_experiments::cli::CommonArgs;
use tocttou_experiments::figures::{
    anatomy, defense, detect, fig10, fig11, fig6, fig7, fig8, headline, ld_dist, maze, pair_sweep,
    profile, table1, table2, taxonomy,
};
use tocttou_experiments::report::Report;
use tocttou_experiments::svg::{line_chart, span_chart, BarRow, ChartConfig, Series};

#[derive(Debug)]
struct Args {
    exhibits: Vec<String>,
    common: CommonArgs,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut exhibits = Vec::new();
    let mut common = CommonArgs::default();
    let mut out = "target/experiments".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if common.accept(&arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--out" => {
                out = it.next().ok_or("--out needs a value")?;
            }
            "--detect" => exhibits.push("detect".to_string()),
            "--profile" => exhibits.push("profile".to_string()),
            "--help" | "-h" => {
                return Err("usage: repro <fig6|fig7|table1|table2|fig8|fig10|fig11|headline|defense|detect|profile|pairs|taxonomy|anatomy|maze|lddist|all>... [--detect] [--profile] [--anatomy] [--rounds N] [--seed S] [--jobs J] [--cold] [--out DIR]".into());
            }
            name if !name.starts_with('-') => exhibits.push(name.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    // `--anatomy` is a CommonArgs flag (all binaries parse it); here it is
    // shorthand for the anatomy exhibit, like `--detect`/`--profile`.
    if common.anatomy {
        exhibits.push("anatomy".to_string());
    }
    if exhibits.is_empty() {
        exhibits.push("all".to_string());
    }
    Ok(Args {
        exhibits,
        common,
        out,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let wants = |name: &str| {
        args.exhibits.iter().any(|e| e == name) || args.exhibits.iter().any(|e| e == "all")
    };
    let mut report = Report::new(&args.out).expect("create output directory");

    if wants("headline") {
        let mut cfg = headline::Config::default();
        args.common
            .apply(&mut cfg.rounds, &mut cfg.seed, &mut cfg.jobs);
        cfg.cold = args.common.cold;
        let out = headline::run(&cfg);
        println!("{out}");
        report.add("headline", &out).expect("write headline");
    }
    if wants("fig6") {
        let mut cfg = fig6::Config::default();
        args.common
            .apply(&mut cfg.rounds, &mut cfg.seed, &mut cfg.jobs);
        cfg.cold = args.common.cold;
        let out = fig6::run(&cfg);
        println!("{out}");
        report.add("fig6", &out).expect("write fig6");
        let svg = line_chart(
            &ChartConfig {
                title: "Figure 6 — vi uniprocessor attack success vs file size".into(),
                x_label: "file size (KB)".into(),
                y_label: "success rate".into(),
                ..ChartConfig::default()
            },
            &[
                Series {
                    label: "observed".into(),
                    points: out
                        .rows
                        .iter()
                        .map(|r| (r.size_kb as f64, r.observed))
                        .collect(),
                    color: "#d62728".into(),
                },
                Series {
                    label: "model (window/timeslice)".into(),
                    points: out
                        .rows
                        .iter()
                        .map(|r| (r.size_kb as f64, r.model))
                        .collect(),
                    color: "#1f77b4".into(),
                },
            ],
        );
        std::fs::write(report.dir().join("fig6.svg"), svg).expect("write fig6.svg");
    }
    if wants("fig7") {
        let mut cfg = fig7::Config::default();
        if let Some(r) = args.common.rounds {
            cfg.rounds = (r / 10).max(3);
        }
        if let Some(s) = args.common.seed {
            cfg.seed = s;
        }
        if let Some(j) = args.common.jobs {
            cfg.jobs = j;
        }
        cfg.cold = args.common.cold;
        let out = fig7::run(&cfg);
        println!("{out}");
        report.add("fig7", &out).expect("write fig7");
        let svg = line_chart(
            &ChartConfig {
                title: "Figure 7 — L and D for vi SMP attacks".into(),
                x_label: "file size (KB)".into(),
                y_label: "time (µs)".into(),
                ..ChartConfig::default()
            },
            &[
                Series {
                    label: "L".into(),
                    points: out
                        .rows
                        .iter()
                        .map(|r| (r.size_kb as f64, r.l_us))
                        .collect(),
                    color: "#d62728".into(),
                },
                Series {
                    label: "D".into(),
                    points: out
                        .rows
                        .iter()
                        .map(|r| (r.size_kb as f64, r.d_us))
                        .collect(),
                    color: "#1f77b4".into(),
                },
            ],
        );
        std::fs::write(report.dir().join("fig7.svg"), svg).expect("write fig7.svg");
    }
    if wants("table1") {
        let mut cfg = table1::Config::default();
        args.common
            .apply(&mut cfg.rounds, &mut cfg.seed, &mut cfg.jobs);
        cfg.cold = args.common.cold;
        let out = table1::run(&cfg);
        println!("{out}");
        report.add("table1", &out).expect("write table1");
    }
    if wants("table2") {
        let mut cfg = table2::Config::default();
        args.common
            .apply(&mut cfg.rounds, &mut cfg.seed, &mut cfg.jobs);
        cfg.cold = args.common.cold;
        let out = table2::run(&cfg);
        println!("{out}");
        report.add("table2", &out).expect("write table2");
    }
    if wants("fig8") {
        let mut cfg = fig8::Config::default();
        if let Some(s) = args.common.seed {
            cfg.seed = s;
        }
        let out = fig8::run(&cfg);
        println!("{out}");
        report.add("fig8", &out).expect("write fig8");
        std::fs::write(report.dir().join("fig8.svg"), &out.timeline_svg).expect("write fig8.svg");
    }
    if wants("fig10") {
        let mut cfg = fig10::Config::default();
        if let Some(s) = args.common.seed {
            cfg.seed = s;
        }
        let out = fig10::run(&cfg);
        println!("{out}");
        report.add("fig10", &out).expect("write fig10");
        std::fs::write(report.dir().join("fig10.svg"), &out.timeline_svg).expect("write fig10.svg");
    }
    if wants("fig11") {
        let mut cfg = fig11::Config::default();
        if let Some(s) = args.common.seed {
            cfg.seed = s;
        }
        let out = fig11::run(&cfg);
        println!("{out}");
        report.add("fig11", &out).expect("write fig11");
        let rows: Vec<BarRow> = out
            .rows
            .iter()
            .map(|r| BarRow {
                label: format!("{} KB {}", r.size_kb, r.variant),
                spans: vec![
                    (
                        r.stat.start_us,
                        r.stat.end_us,
                        "#999999".into(),
                        "stat".into(),
                    ),
                    (
                        r.unlink.start_us,
                        r.unlink.end_us,
                        "#d62728".into(),
                        "unlink".into(),
                    ),
                    (
                        r.symlink.start_us,
                        r.symlink.end_us,
                        "#1f77b4".into(),
                        "symlink".into(),
                    ),
                ],
            })
            .collect();
        let svg = span_chart(
            &ChartConfig {
                title: "Figure 11 — pipelined vs sequential attack".into(),
                x_label: "time (µs)".into(),
                ..ChartConfig::default()
            },
            &rows,
        );
        std::fs::write(report.dir().join("fig11.svg"), svg).expect("write fig11.svg");
    }

    if wants("defense") {
        let mut cfg = defense::Config::default();
        args.common
            .apply(&mut cfg.rounds, &mut cfg.seed, &mut cfg.jobs);
        cfg.cold = args.common.cold;
        let out = defense::run(&cfg);
        println!("{out}");
        report.add("defense", &out).expect("write defense");
    }
    if wants("detect") {
        let mut cfg = detect::Config::default();
        args.common
            .apply(&mut cfg.rounds, &mut cfg.seed, &mut cfg.jobs);
        cfg.cold = args.common.cold;
        let out = detect::run(&cfg);
        println!("{out}");
        report.add("detect", &out).expect("write detect");
    }
    if wants("profile") {
        let mut cfg = profile::Config::default();
        args.common
            .apply(&mut cfg.rounds, &mut cfg.seed, &mut cfg.jobs);
        cfg.cold = args.common.cold;
        let out = profile::run(&cfg);
        println!("{out}");
        report.add("profile", &out).expect("write profile");
    }
    if wants("pairs") {
        let mut cfg = pair_sweep::Config::default();
        if let Some(r) = args.common.rounds {
            cfg.rounds = (r / 20).max(2);
        }
        if let Some(s) = args.common.seed {
            cfg.seed = s;
        }
        let out = pair_sweep::run(&cfg);
        println!("{out}");
        report.add("pair_sweep", &out).expect("write pair_sweep");
    }

    if wants("taxonomy") {
        let mut cfg = taxonomy::Config::default();
        args.common
            .apply(&mut cfg.rounds, &mut cfg.seed, &mut cfg.jobs);
        cfg.cold = args.common.cold;
        let out = taxonomy::run(&cfg);
        println!("{out}");
        report.add("taxonomy", &out).expect("write taxonomy");
    }

    if wants("anatomy") {
        let mut cfg = anatomy::Config::default();
        args.common
            .apply(&mut cfg.rounds, &mut cfg.seed, &mut cfg.jobs);
        cfg.cold = args.common.cold;
        let out = anatomy::run(&cfg);
        println!("{out}");
        report.add("anatomy", &out).expect("write anatomy");
    }

    if wants("lddist") {
        let mut cfg = ld_dist::Config::default();
        if let Some(r) = args.common.rounds {
            cfg.rounds = r;
        }
        if let Some(s) = args.common.seed {
            cfg.seed = s;
        }
        let out = ld_dist::run(&cfg);
        println!("{out}");
        report.add("ld_dist", &out).expect("write ld_dist");
    }
    if wants("maze") {
        let mut cfg = maze::Config::default();
        if let Some(r) = args.common.rounds {
            cfg.rounds = r;
        }
        if let Some(s) = args.common.seed {
            cfg.seed = s;
        }
        let out = maze::run(&cfg);
        println!("{out}");
        report.add("maze", &out).expect("write maze");
        let svg = line_chart(
            &ChartConfig {
                title: "Maze amplification — uniprocessor success vs pathname depth".into(),
                x_label: "maze depth (components)".into(),
                y_label: "success rate".into(),
                ..ChartConfig::default()
            },
            &[Series {
                label: "observed".into(),
                points: out
                    .rows
                    .iter()
                    .map(|r| (r.depth as f64, r.observed))
                    .collect(),
                color: "#d62728".into(),
            }],
        );
        std::fs::write(report.dir().join("maze.svg"), svg).expect("write maze.svg");
    }

    let path = report
        .write_combined("REPORT.md")
        .expect("write combined report");
    eprintln!("wrote {}", path.display());
}
