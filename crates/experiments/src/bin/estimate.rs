//! `estimate` — adaptive rare-event estimation of one scenario's success
//! rate.
//!
//! ```text
//! estimate --family F [--size-kb N] [--target R] [--seed S] [--jobs J]
//!          [--cold] [--store DIR] [--block N] [--max-rounds N]
//!          [--pilot N] [--wave N] [--near-ns N] [--strata N] [--out DIR]
//! ```
//!
//! Runs waves of simulation rounds until the 95 % confidence interval's
//! half-width is at most `--target` (default 0.2 = ±20 %) relative to the
//! estimated rate, stratifying the victim's laxity window and splitting
//! strata whose rounds climb the forensics milestone ladder — typically
//! an order of magnitude fewer rounds than a fixed-round `sweep` needs
//! for the same precision on a rare-event scenario. With `--store DIR`
//! the waves land in a campaign-style content-addressed store, so a
//! killed run resumes and an unchanged re-run replays from cache.
//!
//! Prints the outcome and writes `estimate.json` + `ESTIMATE.md` under
//! the output directory (default `target/experiments`). The result is
//! byte-identical at any `--jobs` value, warm or cold.

use tocttou_experiments::estimate::{run_estimate, EstimateConfig};
use tocttou_experiments::grid::Family;
use tocttou_experiments::report::Report;

#[derive(Debug)]
struct Args {
    family: Family,
    size_kb: Option<u64>,
    cfg: EstimateConfig,
    out: String,
}

fn parse_flag<T: std::str::FromStr>(
    flag: &str,
    rest: &mut dyn Iterator<Item = String>,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let raw = rest.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|e| format!("invalid {flag} value {raw:?}: {e}"))
}

fn parse_args() -> Result<Args, String> {
    let mut family = None;
    let mut size_kb = None;
    let mut cfg = EstimateConfig::default();
    let mut out = "target/experiments".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--family" => {
                let raw: String = parse_flag(&arg, &mut it)?;
                family = Some(Family::parse(&raw).ok_or_else(|| {
                    let names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
                    format!(
                        "invalid --family value {raw:?}: expected one of {}",
                        names.join(", ")
                    )
                })?);
            }
            "--size-kb" => size_kb = Some(parse_flag(&arg, &mut it)?),
            "--target" => cfg.target_rel_half_width = parse_flag(&arg, &mut it)?,
            "--seed" => cfg.base_seed = parse_flag(&arg, &mut it)?,
            "--jobs" => cfg.jobs = parse_flag(&arg, &mut it)?,
            "--cold" => cfg.cold = true,
            "--store" => {
                let dir: String = parse_flag(&arg, &mut it)?;
                cfg.store = Some(dir.into());
            }
            "--block" => cfg.block = parse_flag(&arg, &mut it)?,
            "--max-rounds" => cfg.max_rounds = parse_flag(&arg, &mut it)?,
            "--pilot" => cfg.pilot_rounds = parse_flag(&arg, &mut it)?,
            "--wave" => cfg.wave_rounds = parse_flag(&arg, &mut it)?,
            "--near-ns" => cfg.near_miss_ns = parse_flag(&arg, &mut it)?,
            "--strata" => cfg.initial_strata = parse_flag(&arg, &mut it)?,
            "--out" => out = parse_flag(&arg, &mut it)?,
            "--help" | "-h" => {
                return Err(
                    "usage: estimate --family F [--size-kb N] [--target R] [--seed S] [--jobs J] \
                     [--cold] [--store DIR] [--block N] [--max-rounds N] [--pilot N] [--wave N] \
                     [--near-ns N] [--strata N] [--out DIR]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let family = family.ok_or("missing --family <name>")?;
    // Reject bad knob combinations here so misuse exits 2 before any
    // simulation or store I/O starts.
    cfg.validate()?;
    Ok(Args {
        family,
        size_kb,
        cfg,
        out,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let file_size = args
        .size_kb
        .map(|kb| kb * 1024)
        .unwrap_or_else(|| args.family.default_file_size());
    let scenario = args.family.build(file_size);

    let run = match run_estimate(&scenario, &args.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("estimation failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", run.outcome);
    if run.cached_rounds > 0 {
        eprintln!(
            "store replay: {} rounds cached, {} computed",
            run.cached_rounds, run.computed_rounds
        );
    }

    let mut report = Report::new(&args.out).expect("create output directory");
    report
        .add("estimate", &run.outcome)
        .expect("write estimate.json");
    let path = report
        .write_combined("ESTIMATE.md")
        .expect("write ESTIMATE.md");
    eprintln!("wrote {}", path.display());
}
