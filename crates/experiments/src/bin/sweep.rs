//! `sweep` — run one parameter grid through the grid-parallel sweep
//! engine.
//!
//! ```text
//! sweep --grid <d|size|cpus|pipelined|swap|taxonomy> [--family F] [--size-kb N]
//!       [--points N] [--rounds N] [--seed S] [--jobs J] [--out DIR]
//!       [--collect-ld] [--cold]
//!
//! axes:     d         detection-period scales 0.25×..2× (Formula (1))
//!           size      file-size ladder (Figure 7's axis)
//!           cpus      CPU counts 1, 2, 4, ...
//!           pipelined pipelined vs sequential attacker (Figure 11)
//!           swap      symlink vs hardlink swap pair
//!           taxonomy  one point per DSL-library scenario (distinct pairs)
//! families: vi-uni vi-smp gedit-uni gedit-smp gedit-mc-v1 gedit-mc-v2
//!           pipelined hardlink tmp-logrotate chown-walk tmp-sweeper
//!           maildrop installer-read pkg-installer mktemp-reopen sock-bind
//!           vi-crowd swap-contest
//! ```
//!
//! Prints the per-point success table to stdout and writes `sweep.json`
//! plus `SWEEP.md` under the output directory (default
//! `target/experiments`). Every grid point's outcome is byte-identical to
//! a standalone `run_mc` at base seed `seed + salt`, whatever `--jobs`
//! says — the sweep engine only changes how fast the grid finishes.

use tocttou_experiments::cli::{CommonArgs, GridArgs};
use tocttou_experiments::report::Report;
use tocttou_experiments::sweep::{run_sweep, SweepConfig};

#[derive(Debug)]
struct Args {
    common: CommonArgs,
    grid: GridArgs,
    collect_ld: bool,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut common = CommonArgs::default();
    let mut grid = GridArgs::default();
    let mut collect_ld = false;
    let mut out = "target/experiments".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if common.accept(&arg, &mut it)? || grid.accept(&arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--out" => {
                out = it.next().ok_or("--out needs a value")?;
            }
            "--collect-ld" => collect_ld = true,
            "--help" | "-h" => {
                return Err(
                    "usage: sweep --grid <d|size|cpus|pipelined|swap|taxonomy> [--family F] [--size-kb N] \
                     [--points N] [--rounds N] [--seed S] [--jobs J] [--out DIR] [--collect-ld] \
                     [--cold]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        common,
        grid,
        collect_ld,
        out,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let grid = match args.grid.build_grid() {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if grid.is_empty() {
        eprintln!("empty grid: no points to sweep, refusing to write an empty report");
        std::process::exit(3);
    }
    let mut cfg = SweepConfig {
        grid,
        rounds: 200,
        base_seed: 0x7061_7065,
        collect_ld: args.collect_ld,
        jobs: 1,
        cold: args.common.cold,
    };
    args.common
        .apply(&mut cfg.rounds, &mut cfg.base_seed, &mut cfg.jobs);

    let outcome = run_sweep(&cfg);
    println!("{outcome}");

    let mut report = Report::new(&args.out).expect("create output directory");
    report.add("sweep", &outcome).expect("write sweep.json");
    let path = report.write_combined("SWEEP.md").expect("write SWEEP.md");
    eprintln!("wrote {}", path.display());
}
