//! # tocttou-experiments — reproduction harness for every table and figure
//!
//! Monte-Carlo drivers, paper-faithful L/D estimators and ASCII event
//! timelines that regenerate the evaluation of *"Multiprocessors May Reduce
//! System Dependability under File-Based Race Condition Attacks"* (Wei &
//! Pu, DSN 2007) on top of the `tocttou-os` simulator:
//!
//! * [`monte_carlo`] — seeded N-round success-rate batches;
//! * [`extract`] — trace → (t1, D, t3) → L/D per Sections 3.4/6.1;
//! * [`timeline`] — Figure 8/10-style two-lane event charts;
//! * [`figures`] — one module per exhibit (Fig 6, Fig 7, Table 1, Table 2,
//!   Fig 8, Fig 10, Fig 11, the headline comparison, the detector
//!   precision/recall scorecard, and the kernel profiling scorecard);
//! * [`grid`] — shared parameter-grid construction (family × file size ×
//!   detection period × CPU count × pipelined switch);
//! * [`sweep`] — the grid-parallel sweep engine: whole grids on one
//!   shared worker pool with snapshot/forked templates, per-point
//!   outcomes bit-identical to standalone [`monte_carlo::run_mc`];
//! * [`campaign`] — resumable sweep campaigns: content-addressed seed
//!   blocks in an append-only JSONL store, work-stealing compute over the
//!   missing blocks and streamed aggregation, byte-identical to
//!   [`sweep::run_sweep`];
//! * [`estimate`] — adaptive rare-event estimation: sequential stopping
//!   on a target relative half-width, exact stratification of the laxity
//!   window, and milestone-guided importance splitting, with [`run_mc`]
//!   kept as the brute-force oracle;
//! * [`report`] — text + JSON artifact writing;
//! * [`export`] — JSONL export of traces, detections and metrics;
//! * [`perfetto`] — Chrome trace-event / Perfetto JSON export of a
//!   spans-armed round (per-CPU tracks, semaphore holds, race windows,
//!   strike/detection markers);
//! * [`cli`] — the `--rounds`/`--seed`/`--jobs` flags shared by the
//!   binaries;
//! * [`svg`] — dependency-free SVG rendering of the figure shapes.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! cargo run -p tocttou-experiments --release --bin repro -- all --rounds 200
//! ```
//!
//! and the `sweep` binary runs one grid directly:
//!
//! ```text
//! cargo run -p tocttou-experiments --release --bin sweep -- --grid d --points 8
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod cli;
pub mod estimate;
pub mod export;
pub mod extract;
pub mod figures;
pub mod grid;
pub mod monte_carlo;
pub mod perfetto;
pub mod report;
pub mod svg;
pub mod sweep;
pub mod timeline;

pub use campaign::{compact_store, run_campaign, CampaignConfig, CampaignOutcome, CompactStats};
pub use cli::CommonArgs;
pub use estimate::{
    fixed_rounds_for_target, run_estimate, EstimateConfig, EstimateOutcome, EstimateRun,
    StratumReport,
};
pub use export::{export_jsonl, SCHEMA_VERSION};
pub use extract::{observe, AttackObservation, WindowKind};
pub use grid::{Family, Grid, GridKind, GridPoint};
pub use monte_carlo::{run_mc, McConfig, McOutcome};
pub use perfetto::export_perfetto;
pub use report::Report;
pub use sweep::{run_sweep, SweepConfig, SweepOutcome};
pub use timeline::{Lane, Span, SpanKind, Timeline};
