//! Experiment artifact writing: human-readable text and machine-readable
//! JSON, side by side.

use serde::Serialize;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A sink for experiment outputs.
#[derive(Debug, Clone)]
pub struct Report {
    dir: PathBuf,
    sections: Vec<(String, String)>,
}

impl Report {
    /// Creates a report rooted at `dir` (created if absent).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Report {
            dir,
            sections: Vec::new(),
        })
    }

    /// The report directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records one experiment: its display text goes into the combined
    /// report, its JSON next to it as `<id>.json`.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn add<T: Serialize + std::fmt::Display>(
        &mut self,
        id: &str,
        value: &T,
    ) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(value)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        fs::write(self.dir.join(format!("{id}.json")), json)?;
        self.sections.push((id.to_string(), value.to_string()));
        Ok(())
    }

    /// Writes the combined text report as `<name>` inside the report dir
    /// and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_combined(&self, name: &str) -> std::io::Result<PathBuf> {
        let path = self.dir.join(name);
        let mut f = fs::File::create(&path)?;
        for (id, text) in &self.sections {
            writeln!(f, "## {id}\n")?;
            writeln!(f, "```text")?;
            writeln!(f, "{}", text.trim_end())?;
            writeln!(f, "```\n")?;
        }
        Ok(path)
    }

    /// The accumulated sections (id, rendered text).
    pub fn sections(&self) -> &[(String, String)] {
        &self.sections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Demo {
        x: u32,
    }
    impl std::fmt::Display for Demo {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "x = {}", self.x)
        }
    }

    #[test]
    fn writes_json_and_combined_text() {
        let dir = std::env::temp_dir().join(format!("tocttou-report-{}", std::process::id()));
        let mut report = Report::new(&dir).unwrap();
        report.add("demo", &Demo { x: 7 }).unwrap();
        let combined = report.write_combined("REPORT.md").unwrap();
        let json = std::fs::read_to_string(dir.join("demo.json")).unwrap();
        assert!(json.contains("\"x\": 7"));
        let text = std::fs::read_to_string(combined).unwrap();
        assert!(text.contains("## demo"));
        assert!(text.contains("x = 7"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
