//! Adaptive rare-event estimation: sequential stopping, stratified laxity
//! sampling and milestone-guided importance splitting.
//!
//! The paper's headline numbers are tail probabilities (uniprocessor vi
//! success ≈ 0.2 %), and the production-scale question is "is this rate
//! 1e-6 or 1e-9?" — which fixed-`--rounds` Monte-Carlo cannot answer in
//! bounded time no matter how fast a round is. This module layers three
//! classic rare-event techniques over the same deterministic round engine
//! [`run_mc`](crate::monte_carlo::run_mc) uses, and keeps `run_mc` itself
//! as the unbiased **oracle** on scenarios where brute force is feasible
//! (the same spirit as the warm/cold, wheel/heap and VFS oracles):
//!
//! * **Sequential stopping.** Rounds are scheduled in deterministic
//!   *waves* instead of a fixed count, and the run stops at the first wave
//!   boundary where the stratified 95 % interval's half-width falls under
//!   [`target_rel_half_width`](EstimateConfig::target_rel_half_width)
//!   relative to the point estimate (a single stratum uses the Wilson
//!   interval from `tocttou_core::stats`; a zero-success run reports the
//!   pooled Clopper–Pearson upper bound instead of a two-sided interval).
//! * **Stratified laxity sampling.** The uniprocessor victims draw their
//!   save's slice phase from a *discrete* uniform over inclusive
//!   nanosecond bounds — the laxity term of Formula (1). Partitioning
//!   those integer bounds and sampling each sub-range via
//!   [`Scenario::restrict_laxity`] is **exact conditioning**, so stratum
//!   estimates recombine without bias under width weights, and a
//!   Neyman-style allocation (Laplace-smoothed σ̂, boosted by the
//!   stratum's near-miss rate) concentrates rounds where the variance
//!   lives. The allocation is a pure function of the tallies, so it is
//!   identical at any `--jobs` value.
//! * **Importance splitting (RESTART).** Strata whose rounds climb the
//!   forensics milestone ladder ([`RoundMilestones`]: window closed,
//!   strike within the near-miss threshold, strike landed) are *split*:
//!   the parent is retired — its samples are dropped from the estimate but
//!   still counted against the budget — and two child sub-ranges restart
//!   with fresh, disjoint seed streams derived via
//!   [`nested_base`]. Because children are re-conditioned exactly and
//!   their seeds never depend on the parent's draws,
//!   `E[p̂ | partition] = Σ Wₕ·pₕ = p` for **every** reachable partition,
//!   hence the recombined estimate stays unbiased even though the
//!   partition itself is chosen adaptively. The near-miss distance that
//!   guides the split is exactly the PR 8 forensics miss-distance signal,
//!   which discriminates hot sub-ranges even when no round has succeeded
//!   yet.
//!
//! ## Determinism and resumability
//!
//! A wave's work items are seed blocks under the same splice contract as
//! the campaign store ([`seed_block`]: stratum round *i* draws seed
//! `stratum_base + i`), folded in item order after the wave completes, so
//! [`EstimateOutcome`] is byte-identical across `--jobs` values and
//! warm/cold boot (asserted by `tests/estimate_determinism.rs`). With a
//! [`store`](EstimateConfig::store) directory the items are
//! content-addressed campaign blocks: a killed estimation resumes, and an
//! unchanged re-run replays entirely from cache.
//!
//! [`RoundMilestones`]: tocttou_os::forensics::RoundMilestones
//! [`nested_base`]: tocttou_sim::rng::nested_base
//! [`seed_block`]: tocttou_sim::rng::seed_block
//! [`Scenario::restrict_laxity`]: tocttou_workloads::scenario::Scenario::restrict_laxity

use crate::campaign::{
    block_key, blocks_path, compute_blocks, read_block, scan_store, scenario_fingerprint, Missing,
    ObsRecord,
};
use crate::extract::WindowKind;
use crate::monte_carlo::{
    effective_jobs, fnv1a, run_one_round, window_kind_of, RoundBoot, DETECTION_FINGERPRINT_SEED,
};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tocttou_core::stats::{clopper_pearson_ci, SuccessCounter};
use tocttou_os::kernel::{Checkpoint, KernelPool};
use tocttou_sim::rng::{nested_base, seed_block};
use tocttou_workloads::scenario::Scenario;

/// The z-score of the 95 % two-sided normal interval, matching
/// `SuccessCounter::wilson_ci95`.
const Z95: f64 = 1.96;

/// Options for one adaptive estimation run.
#[derive(Debug, Clone)]
pub struct EstimateConfig {
    /// Base seed; stratum seed streams are derived from it via
    /// [`nested_base`](tocttou_sim::rng::nested_base), never consumed
    /// directly, so strata stay mutually disjoint.
    pub base_seed: u64,
    /// Stop once the 95 % interval half-width is at most this fraction of
    /// the point estimate (e.g. `0.2` = ±20 % relative). Must be a finite
    /// positive number.
    pub target_rel_half_width: f64,
    /// Initial partition of the laxity window. Clamped to the window's
    /// integer width; scenarios without a laxity window always run one
    /// stratum.
    pub initial_strata: usize,
    /// Rounds every newly created stratum receives before it participates
    /// in allocation, stopping or splitting decisions.
    pub pilot_rounds: u64,
    /// Rounds distributed per Neyman wave across live strata.
    pub wave_rounds: u64,
    /// Budget cap: the run stops (unconverged) at the first wave boundary
    /// at or past this many simulated rounds — the zero-rate escape hatch.
    pub max_rounds: u64,
    /// Strikes missing by at most this many nanoseconds count as
    /// *near misses* for allocation boosts and splitting milestones.
    pub near_miss_ns: u64,
    /// Minimum rounds a stratum needs before it may be split.
    pub split_min: u64,
    /// Maximum split depth per stratum (initial strata are depth 0).
    pub max_depth: u32,
    /// Minimum successes across live strata before convergence is
    /// declared (guards against stopping on a lucky handful).
    pub min_successes: u64,
    /// Worker threads (`0` = auto). Byte-identical results at any value.
    pub jobs: usize,
    /// Cold-boot every round — the checkpoint oracle path, byte-identical.
    pub cold: bool,
    /// Rounds per content-addressed seed block (store mode granularity).
    /// Must be nonzero.
    pub block: u64,
    /// Campaign-style store directory: waves become resumable
    /// content-addressed blocks, and unchanged re-runs replay from cache.
    /// `None` keeps everything in memory.
    pub store: Option<PathBuf>,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        EstimateConfig {
            base_seed: 0x7061_7065,
            target_rel_half_width: 0.2,
            initial_strata: 8,
            pilot_rounds: 64,
            wave_rounds: 256,
            max_rounds: 50_000,
            near_miss_ns: 100_000,
            split_min: 48,
            max_depth: 10,
            min_successes: 8,
            jobs: 1,
            cold: false,
            block: 64,
            store: None,
        }
    }
}

impl EstimateConfig {
    /// Checks the knobs a caller could plausibly get wrong, returning a
    /// user-facing message (binaries map it to exit code 2).
    ///
    /// # Errors
    ///
    /// Rejects a zero/NaN/non-finite target half-width, zero block size,
    /// zero pilot/wave rounds, and a budget below one pilot.
    pub fn validate(&self) -> Result<(), String> {
        if !self.target_rel_half_width.is_finite() || self.target_rel_half_width <= 0.0 {
            return Err(format!(
                "invalid target half-width {}: must be a finite number > 0",
                self.target_rel_half_width
            ));
        }
        if self.block == 0 {
            return Err("invalid --block 0: block size must be at least 1".into());
        }
        if self.pilot_rounds == 0 || self.wave_rounds == 0 {
            return Err("pilot and wave rounds must be at least 1".into());
        }
        if self.max_rounds < self.pilot_rounds {
            return Err(format!(
                "max rounds {} cannot cover one pilot of {} rounds",
                self.max_rounds, self.pilot_rounds
            ));
        }
        Ok(())
    }
}

/// One laxity stratum's live tallies.
#[derive(Debug, Clone)]
struct Stratum {
    /// Inclusive phase bounds in nanoseconds (`(0, 0)` for the single
    /// unstratified stratum of a scenario without a laxity window).
    lo_n: u64,
    hi_n: u64,
    /// `P(phase ∈ [lo_n, hi_n])` under the root scenario.
    weight: f64,
    /// Base of this stratum's private seed stream.
    seed_base: u64,
    /// Whether the bounds are a real laxity sub-range (splittable).
    splittable: bool,
    depth: u32,
    rounds: u64,
    successes: u64,
    /// Rounds whose closest miss was within the near-miss threshold, or
    /// that landed a strike outright.
    near: u64,
    windows_closed: u64,
    strikes_hit: u64,
    /// Split parents: excluded from the estimate, kept for the report.
    retired: bool,
}

/// Per-stratum slice of the final report.
#[derive(Debug, Clone, Serialize)]
pub struct StratumReport {
    /// Inclusive lower phase bound (ns).
    pub lo_ns: u64,
    /// Inclusive upper phase bound (ns).
    pub hi_ns: u64,
    /// Probability weight of the stratum under the root scenario.
    pub weight: f64,
    /// Split depth (initial strata are 0).
    pub depth: u32,
    /// Rounds simulated in the stratum.
    pub rounds: u64,
    /// Successful rounds.
    pub successes: u64,
    /// Near-miss rounds (closest strike within the threshold, or landed).
    pub near_misses: u64,
    /// Rounds in which a check-use window closed.
    pub windows_closed: u64,
    /// Rounds in which a strike landed inside a consumed window.
    pub strikes_hit: u64,
    /// True for split parents, whose samples left the estimate.
    pub retired: bool,
}

/// The recombined result of one estimation run.
///
/// Byte-identical across `--jobs` values and warm/cold boot; everything in
/// it is a pure function of the scenario, the config and the integer
/// tallies folded in deterministic order.
#[derive(Debug, Clone, Serialize)]
pub struct EstimateOutcome {
    /// Root scenario name.
    pub scenario: String,
    /// The stratified point estimate `Σ Wₕ·sₕ/nₕ` over live strata.
    pub rate: f64,
    /// 95 % interval: Wilson for a single stratum, the stratified normal
    /// interval otherwise; `(0, pooled Clopper–Pearson upper)` when no
    /// success was observed.
    pub ci95: (f64, f64),
    /// Achieved half-width relative to the estimate (`None` while the
    /// estimate is zero).
    pub rel_half_width: Option<f64>,
    /// The configured stopping target.
    pub target_rel_half_width: f64,
    /// Whether the stopping rule was met before the round budget ran out.
    pub converged: bool,
    /// Every round simulated, including retired split parents.
    pub simulated_rounds: u64,
    /// Rounds contributing to the estimate (live strata only).
    pub live_rounds: u64,
    /// Successes across live strata.
    pub live_successes: u64,
    /// Wave boundaries crossed.
    pub waves: u64,
    /// Whether the scenario exposed a laxity window to stratify.
    pub stratified: bool,
    /// Fixed-round Monte-Carlo rounds a Wilson interval would need for the
    /// same relative half-width at this rate (`None` while the rate is 0)
    /// — the core-count-independent efficiency baseline.
    pub fixed_rounds_equiv: Option<u64>,
    /// `fixed_rounds_equiv / simulated_rounds`, the sample-efficiency
    /// ratio the bench asserts (`None` while the rate is 0).
    pub efficiency: Option<f64>,
    /// Final partition, live and retired, in creation order.
    pub strata: Vec<StratumReport>,
}

impl std::fmt::Display for EstimateOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: rate {:.3e} [{:.3e}, {:.3e}] after {} rounds in {} waves ({})",
            self.scenario,
            self.rate,
            self.ci95.0,
            self.ci95.1,
            self.simulated_rounds,
            self.waves,
            if self.converged {
                "converged"
            } else {
                "budget exhausted"
            }
        )?;
        if let Some(eff) = self.efficiency.filter(|&e| e >= 1.0) {
            write!(f, ", {eff:.1}x fewer rounds than fixed-round MC")?;
        }
        Ok(())
    }
}

/// What one [`run_estimate`] invocation did: the deterministic outcome
/// plus cache accounting, which deliberately lives *outside*
/// [`EstimateOutcome`] so a resumed run stays byte-identical to a fresh
/// one.
#[derive(Debug, Clone)]
pub struct EstimateRun {
    /// The deterministic result.
    pub outcome: EstimateOutcome,
    /// Rounds simulated by this invocation.
    pub computed_rounds: u64,
    /// Rounds replayed from the store without simulation.
    pub cached_rounds: u64,
}

/// Smallest fixed round count whose Wilson 95 % half-width at the given
/// rate meets the relative target — what plain [`run_mc`] would need, and
/// therefore the denominator-free baseline of the estimator's bench row
/// (sample efficiency is core-count independent, unlike thread speedups).
///
/// Found by doubling then bisection under the monotone envelope of the
/// half-width (the success count is rounded to `rate·n`, so the exact
/// curve has ±1-success ripples; the returned bound is within one
/// bisection cell of the true minimum). Returns `None` for a zero or
/// non-finite rate/target, or when the target needs more than 2⁴⁰ rounds.
///
/// [`run_mc`]: crate::monte_carlo::run_mc
pub fn fixed_rounds_for_target(rate: f64, target_rel_half_width: f64) -> Option<u64> {
    if !rate.is_finite()
        || !target_rel_half_width.is_finite()
        || rate <= 0.0
        || rate > 1.0
        || target_rel_half_width <= 0.0
    {
        return None;
    }
    let target = target_rel_half_width * rate;
    let half_width = |n: u64| -> f64 {
        let s = ((rate * n as f64).round() as u64).min(n);
        let (lo, hi) = SuccessCounter::from_counts(s, n).wilson_ci95();
        (hi - lo) / 2.0
    };
    let mut hi = 1u64;
    while half_width(hi) > target {
        hi = hi.saturating_mul(2);
        if hi > 1 << 40 {
            return None;
        }
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if half_width(mid) <= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// The deterministic seed lane of a stratum, from its phase bounds: FNV
/// over `(lo, hi)` mixed through [`nested_base`], so every stratum that
/// ever exists gets a private seed stream disjoint from all others and
/// from the parent's — resumable by content, not by history.
fn stratum_seed_base(base_seed: u64, lo_n: u64, hi_n: u64) -> u64 {
    let lane = fnv1a(
        fnv1a(DETECTION_FINGERPRINT_SEED, &lo_n.to_le_bytes()),
        &hi_n.to_le_bytes(),
    );
    nested_base(base_seed, lane)
}

/// Appends one stratum (and its restricted scenario) to the parallel
/// arrays. `root` is always the *unrestricted* scenario so stratum names
/// never nest `#lax` suffixes.
fn push_stratum(
    strata: &mut Vec<Stratum>,
    scenarios: &mut Vec<Scenario>,
    root: &Scenario,
    span: u64,
    base_seed: u64,
    (lo_n, hi_n): (u64, u64),
    depth: u32,
) {
    let restricted = root
        .restrict_laxity(lo_n, hi_n)
        .expect("stratum bounds stay inside the laxity window");
    strata.push(Stratum {
        lo_n,
        hi_n,
        weight: (hi_n - lo_n + 1) as f64 / span as f64,
        seed_base: stratum_seed_base(base_seed, lo_n, hi_n),
        splittable: true,
        depth,
        rounds: 0,
        successes: 0,
        near: 0,
        windows_closed: 0,
        strikes_hit: 0,
        retired: false,
    });
    scenarios.push(restricted);
}

/// Builds the initial partition: an exact integer split of the laxity
/// window into (up to) `initial_strata` contiguous sub-ranges, or one
/// unrestricted stratum when the scenario has no laxity axis.
fn initial_partition(
    scenario: &Scenario,
    cfg: &EstimateConfig,
) -> (Vec<Stratum>, Vec<Scenario>, Option<u64>) {
    let mut strata = Vec::new();
    let mut scenarios = Vec::new();
    match scenario.laxity_window_ns() {
        Some((lo, hi)) => {
            let span = hi - lo + 1;
            let parts = (cfg.initial_strata.max(1) as u64).min(span);
            // bound_k = lo + span·k/parts in u128 so the partition is exact
            // for any window width; stratum k is [bound_k, bound_{k+1}-1].
            let bound = |k: u64| lo + (span as u128 * k as u128 / parts as u128) as u64;
            for k in 0..parts {
                push_stratum(
                    &mut strata,
                    &mut scenarios,
                    scenario,
                    span,
                    cfg.base_seed,
                    (bound(k), bound(k + 1) - 1),
                    0,
                );
            }
            (strata, scenarios, Some(span))
        }
        None => {
            strata.push(Stratum {
                lo_n: 0,
                hi_n: 0,
                weight: 1.0,
                seed_base: stratum_seed_base(cfg.base_seed, 0, 0),
                splittable: false,
                depth: 0,
                rounds: 0,
                successes: 0,
                near: 0,
                windows_closed: 0,
                strikes_hit: 0,
                retired: false,
            });
            scenarios.push(scenario.clone());
            (strata, scenarios, None)
        }
    }
}

/// This wave's allocation as `(stratum index, extra rounds)` pairs.
///
/// Freshly created strata are first topped up to the pilot size — an
/// exploration-only wave. Otherwise `wave_rounds` are split Neyman-style:
/// proportionally to `Wₕ·(σ̂ₕ + near-rateₕ + 1/(nₕ+2))` with the
/// *unsmoothed* `σ̂ₕ = √(p̂ₕ(1−p̂ₕ))` — a Laplace-smoothed σ̂ would decay
/// only as `1/√n` on strata that never produce signal, letting the wide
/// dead strata soak up most of every wave. The near-miss rate keeps
/// rounds flowing to strata the milestone ladder says are hot before
/// their first success, and the `1/(n+2)` floor buys each stratum a
/// logarithmic trickle of lifetime exploration. Integerized by largest
/// remainder (ties to the lower index) so the sum is exact and the
/// schedule identical at any `--jobs` value.
fn allocate_wave(strata: &[Stratum], cfg: &EstimateConfig) -> Vec<(usize, u64)> {
    let live: Vec<usize> = (0..strata.len()).filter(|&h| !strata[h].retired).collect();
    let top_ups: Vec<(usize, u64)> = live
        .iter()
        .filter(|&&h| strata[h].rounds < cfg.pilot_rounds)
        .map(|&h| (h, cfg.pilot_rounds - strata[h].rounds))
        .collect();
    if !top_ups.is_empty() {
        return top_ups;
    }
    let scores: Vec<f64> = live
        .iter()
        .map(|&h| {
            let s = &strata[h];
            let n = s.rounds as f64;
            let p = s.successes as f64 / n;
            let sigma = (p * (1.0 - p)).sqrt();
            let near_rate = s.near as f64 / n;
            s.weight * (sigma + near_rate + 1.0 / (n + 2.0))
        })
        .collect();
    let total: f64 = scores.iter().sum();
    let raw: Vec<f64> = scores
        .iter()
        .map(|sc| cfg.wave_rounds as f64 * sc / total)
        .collect();
    let mut counts: Vec<u64> = raw.iter().map(|r| r.floor() as u64).collect();
    let assigned: u64 = counts.iter().sum();
    let mut order: Vec<usize> = (0..live.len()).collect();
    order.sort_by(|&a, &b| {
        let (fa, fb) = (raw[a] - raw[a].floor(), raw[b] - raw[b].floor());
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for &i in order.iter().take((cfg.wave_rounds - assigned) as usize) {
        counts[i] += 1;
    }
    live.into_iter()
        .zip(counts)
        .filter(|&(_, add)| add > 0)
        .collect()
}

/// The stratified estimate and its 95 % interval over live strata.
struct CurrentEstimate {
    rate: f64,
    half_width: f64,
    ci: (f64, f64),
    live_rounds: u64,
    live_successes: u64,
}

fn current_estimate(strata: &[Stratum]) -> CurrentEstimate {
    let live: Vec<&Stratum> = strata.iter().filter(|s| !s.retired).collect();
    let live_rounds: u64 = live.iter().map(|s| s.rounds).sum();
    let live_successes: u64 = live.iter().map(|s| s.successes).sum();
    if live.len() == 1 {
        let c = SuccessCounter::from_counts(live[0].successes, live[0].rounds);
        let (lo, hi) = c.wilson_ci95();
        return CurrentEstimate {
            rate: c.rate(),
            half_width: (hi - lo) / 2.0,
            ci: (lo, hi),
            live_rounds,
            live_successes,
        };
    }
    // The standard stratified estimator: p̂ = Σ Wₕ·p̂ₕ with the plug-in
    // variance Σ Wₕ²·p̂ₕ(1−p̂ₕ)/nₕ. Dead strata contribute zero variance —
    // deliberately: the milestone-guided splitting, not the variance
    // estimate, is what hunts for mass the samples haven't shown yet.
    let mut rate = 0.0;
    let mut var = 0.0;
    for s in &live {
        if s.rounds == 0 {
            continue;
        }
        let n = s.rounds as f64;
        let p = s.successes as f64 / n;
        rate += s.weight * p;
        var += s.weight * s.weight * p * (1.0 - p) / n;
    }
    let mut half_width = Z95 * var.sqrt();
    let ci = if live_successes == 0 {
        // No basis for a two-sided interval; report the conservative
        // pooled exact upper bound ("the rate is below X or we were very
        // unlucky"), which is what a zero-rate scenario run should say.
        (0.0, clopper_pearson_ci(0, live_rounds, 0.05).1)
    } else if var == 0.0 {
        // Every live stratum sits at p̂ ∈ {0, 1}: the plug-in variance
        // collapses and the normal interval would claim certainty. Fall
        // back to the exact pooled interval, which is conservative here.
        let ci = clopper_pearson_ci(live_successes, live_rounds, 0.05);
        half_width = (ci.1 - ci.0) / 2.0;
        ci
    } else {
        ((rate - half_width).max(0.0), (rate + half_width).min(1.0))
    };
    CurrentEstimate {
        rate,
        half_width,
        ci,
        live_rounds,
        live_successes,
    }
}

/// Splits at most one stratum per wave: among live strata that are
/// splittable, deep enough in samples (`split_min`), not at `max_depth`,
/// wider than one nanosecond, and showing milestone signal that is
/// *sparse* (under a quarter of rounds — a stratum saturated with signal
/// is already homogeneous and splitting it only burns its samples), pick
/// the one with the highest `Wₕ·(successes+near)/nₕ`, ties to the lower
/// index. The parent retires; two fresh children restart on its halves.
fn maybe_split(
    strata: &mut Vec<Stratum>,
    scenarios: &mut Vec<Scenario>,
    root: &Scenario,
    span: Option<u64>,
    cfg: &EstimateConfig,
) {
    let Some(span) = span else { return };
    let mut best: Option<(usize, f64)> = None;
    for (h, s) in strata.iter().enumerate() {
        if s.retired
            || !s.splittable
            || s.hi_n <= s.lo_n
            || s.depth >= cfg.max_depth
            || s.rounds < cfg.split_min
        {
            continue;
        }
        let signal = s.successes + s.near;
        if signal == 0 || signal * 4 >= s.rounds {
            continue;
        }
        let score = s.weight * signal as f64 / s.rounds as f64;
        if best.is_none_or(|(_, b)| score > b) {
            best = Some((h, score));
        }
    }
    let Some((h, _)) = best else { return };
    let (lo, hi, depth) = (strata[h].lo_n, strata[h].hi_n, strata[h].depth);
    strata[h].retired = true;
    let mid = lo + (hi - lo) / 2;
    for (child_lo, child_hi) in [(lo, mid), (mid + 1, hi)] {
        push_stratum(
            strata,
            scenarios,
            root,
            span,
            cfg.base_seed,
            (child_lo, child_hi),
            depth + 1,
        );
    }
}

/// Executes one wave's items. Store mode computes only the blocks the
/// store is missing and reads every item back by content address (the
/// campaign cache contract); memory mode computes everything in place.
/// Either way the returned observation blocks are in item order, so the
/// caller's fold is deterministic.
fn run_wave(
    items: &[Missing],
    scenarios: &[Scenario],
    seed_bases: &[u64],
    cfg: &EstimateConfig,
) -> std::io::Result<(Vec<Vec<ObsRecord>>, u64)> {
    match cfg.store.as_deref() {
        Some(dir) => {
            let path = blocks_path(dir);
            let mut index = scan_store(&path)?;
            let missing: Vec<Missing> = items
                .iter()
                .filter(|i| !index.contains_key(&i.key))
                .copied()
                .collect();
            let cached_rounds: u64 = items
                .iter()
                .filter(|i| index.contains_key(&i.key))
                .map(|i| i.end - i.start)
                .sum();
            if !missing.is_empty() {
                compute_blocks(&path, cfg.jobs, cfg.cold, scenarios, seed_bases, &missing)?;
                index = scan_store(&path)?;
            }
            let mut file = std::fs::File::open(&path)?;
            let mut buf = Vec::new();
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let &span = index
                    .get(&item.key)
                    .ok_or_else(|| std::io::Error::other("wave block missing after compute"))?;
                out.push(read_block(&mut file, span, &mut buf, item)?.obs);
            }
            Ok((out, cached_rounds))
        }
        None => Ok((
            run_wave_memory(items, scenarios, seed_bases, cfg.jobs, cfg.cold),
            0,
        )),
    }
}

/// In-memory wave executor: the campaign compute loop without the store —
/// same template fork, same warm checkpoints, same work-stealing cursor,
/// results landing in per-item slots so order is by item, not by worker.
fn run_wave_memory(
    items: &[Missing],
    scenarios: &[Scenario],
    seed_bases: &[u64],
    jobs: usize,
    cold: bool,
) -> Vec<Vec<ObsRecord>> {
    let kinds: Vec<WindowKind> = scenarios.iter().map(window_kind_of).collect();
    let templates: Vec<tocttou_os::vfs::Vfs> = match scenarios.first() {
        None => Vec::new(),
        Some(first) => {
            let base = first.base_vfs();
            scenarios
                .iter()
                .map(|s| s.template_vfs_from_base(&base))
                .collect()
        }
    };
    let checkpoints: Vec<Checkpoint> = if cold {
        Vec::new()
    } else {
        scenarios
            .iter()
            .zip(&templates)
            .map(|(s, t)| s.round_checkpoint(t))
            .collect()
    };
    let boots: Vec<RoundBoot<'_>> = if cold {
        templates.iter().map(RoundBoot::Cold).collect()
    } else {
        checkpoints.iter().map(RoundBoot::Warm).collect()
    };
    let total_rounds: u64 = items.iter().map(|m| m.end - m.start).sum();
    let workers = effective_jobs(jobs, total_rounds).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Vec<ObsRecord>>> = items.iter().map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        let (scenarios, boots, kinds, next, slots) = (&scenarios, &boots, &kinds, &next, &slots);
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut pool = KernelPool::new().retain_metrics();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(idx) else { break };
                        let p = item.point;
                        let mut obs = Vec::with_capacity((item.end - item.start) as usize);
                        for seed in seed_block(seed_bases[p], item.start, item.end) {
                            let (o, returned) =
                                run_one_round(&scenarios[p], boots[p], pool, seed, kinds[p], false);
                            pool = returned;
                            obs.push(ObsRecord::from_obs(&o));
                        }
                        *slots[idx].lock().expect("wave slot poisoned") = obs;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("estimation worker panicked");
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("wave slot poisoned"))
        .collect()
}

/// Runs the adaptive estimator on one scenario.
///
/// See the [module docs](self) for the algorithm and its identity
/// contract. The returned [`EstimateOutcome`] is byte-identical across
/// `--jobs` values, warm/cold boot, and fresh vs. resumed store runs.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidInput`] for a config that fails
/// [`EstimateConfig::validate`], and propagates store I/O failures in
/// store mode. Simulation itself is infallible.
pub fn run_estimate(scenario: &Scenario, cfg: &EstimateConfig) -> std::io::Result<EstimateRun> {
    cfg.validate()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    if let Some(dir) = &cfg.store {
        std::fs::create_dir_all(dir)?;
    }

    let (mut strata, mut scenarios, span) = initial_partition(scenario, cfg);
    let mut simulated = 0u64;
    let mut cached_total = 0u64;
    let mut waves = 0u64;
    let mut converged = false;

    loop {
        let alloc = allocate_wave(&strata, cfg);
        let mut items: Vec<Missing> = Vec::new();
        for &(h, add) in &alloc {
            let fp = scenario_fingerprint(&scenarios[h]);
            let mut start = strata[h].rounds;
            let end_total = start + add;
            while start < end_total {
                let end = (start + cfg.block).min(end_total);
                items.push(Missing {
                    point: h,
                    start,
                    end,
                    key: block_key(fp, strata[h].seed_base, start, end),
                });
                start = end;
            }
        }
        let seed_bases: Vec<u64> = strata.iter().map(|s| s.seed_base).collect();
        let (blocks, cached) = run_wave(&items, &scenarios, &seed_bases, cfg)?;
        cached_total += cached;
        for (item, obs) in items.iter().zip(&blocks) {
            let s = &mut strata[item.point];
            for o in obs {
                s.rounds += 1;
                simulated += 1;
                s.successes += u64::from(o.success);
                s.windows_closed += u64::from(o.window_closed);
                s.strikes_hit += u64::from(o.strike_hit);
                let near = o.strike_hit || o.min_miss_ns.is_some_and(|d| d <= cfg.near_miss_ns);
                s.near += u64::from(near);
            }
        }
        waves += 1;

        let est = current_estimate(&strata);
        if est.rate > 0.0
            && est.live_successes >= cfg.min_successes
            && est.half_width <= cfg.target_rel_half_width * est.rate
        {
            converged = true;
            break;
        }
        if simulated >= cfg.max_rounds {
            break;
        }
        maybe_split(&mut strata, &mut scenarios, scenario, span, cfg);
    }

    let est = current_estimate(&strata);
    let fixed = fixed_rounds_for_target(est.rate, cfg.target_rel_half_width);
    let outcome = EstimateOutcome {
        scenario: scenario.name.clone(),
        rate: est.rate,
        ci95: est.ci,
        rel_half_width: (est.rate > 0.0).then(|| est.half_width / est.rate),
        target_rel_half_width: cfg.target_rel_half_width,
        converged,
        simulated_rounds: simulated,
        live_rounds: est.live_rounds,
        live_successes: est.live_successes,
        waves,
        stratified: span.is_some(),
        fixed_rounds_equiv: fixed,
        efficiency: fixed.map(|f| f as f64 / simulated as f64),
        strata: strata
            .iter()
            .map(|s| StratumReport {
                lo_ns: s.lo_n,
                hi_ns: s.hi_n,
                weight: s.weight,
                depth: s.depth,
                rounds: s.rounds,
                successes: s.successes,
                near_misses: s.near,
                windows_closed: s.windows_closed,
                strikes_hit: s.strikes_hit,
                retired: s.retired,
            })
            .collect(),
    };
    Ok(EstimateRun {
        outcome,
        computed_rounds: simulated - cached_total,
        cached_rounds: cached_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        assert!(EstimateConfig::default().validate().is_ok());
        for target in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            let cfg = EstimateConfig {
                target_rel_half_width: target,
                ..Default::default()
            };
            assert!(cfg.validate().is_err(), "target {target} must be rejected");
        }
        let cfg = EstimateConfig {
            block: 0,
            ..Default::default()
        };
        assert!(cfg.validate().unwrap_err().contains("--block 0"));
        let cfg = EstimateConfig {
            max_rounds: 10,
            pilot_rounds: 64,
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "budget below one pilot");
        // run_estimate surfaces validation as InvalidInput.
        let s = Scenario::vi_smp(1024);
        let bad = EstimateConfig {
            target_rel_half_width: f64::NAN,
            ..Default::default()
        };
        let err = run_estimate(&s, &bad).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn fixed_rounds_baseline_is_sane_and_monotone() {
        assert_eq!(fixed_rounds_for_target(0.0, 0.2), None);
        assert_eq!(fixed_rounds_for_target(0.5, 0.0), None);
        assert_eq!(fixed_rounds_for_target(f64::NAN, 0.2), None);
        // p = 0.002 at ±20 % relative needs tens of thousands of rounds:
        // n ≈ z²(1−p)/(r²p) ≈ 48k.
        let n = fixed_rounds_for_target(0.002, 0.2).unwrap();
        assert!((30_000..70_000).contains(&n), "n = {n}");
        // Tighter targets and rarer events need more rounds.
        assert!(fixed_rounds_for_target(0.002, 0.1).unwrap() > n);
        assert!(fixed_rounds_for_target(0.0002, 0.2).unwrap() > n);
        // Common events need few: z²(1−p)/(r²p) ≈ 171 at p = 0.9, r = 0.05.
        let common = fixed_rounds_for_target(0.9, 0.05).unwrap();
        assert!((100..300).contains(&common), "n = {common}");
        // Deterministic.
        assert_eq!(fixed_rounds_for_target(0.002, 0.2).unwrap(), n);
    }

    #[test]
    fn initial_partition_is_exact_and_weighted() {
        let s = Scenario::vi_uniprocessor(2048);
        let cfg = EstimateConfig::default();
        let (strata, scenarios, span) = initial_partition(&s, &cfg);
        assert_eq!(strata.len(), 8);
        assert_eq!(span, Some(100_000_001), "inclusive integer span");
        // Contiguous, disjoint, covering the whole window.
        assert_eq!(strata[0].lo_n, 0);
        assert_eq!(strata[7].hi_n, 100_000_000);
        for pair in strata.windows(2) {
            assert_eq!(pair[1].lo_n, pair[0].hi_n + 1, "no gap, no overlap");
        }
        let total: f64 = strata.iter().map(|st| st.weight).sum();
        assert!((total - 1.0).abs() < 1e-12, "weights sum to 1: {total}");
        // Each restricted scenario matches its stratum's bounds.
        for (st, sc) in strata.iter().zip(&scenarios) {
            assert_eq!(sc.laxity_window_ns(), Some((st.lo_n, st.hi_n)));
        }
        // Seed lanes are pairwise distinct.
        for i in 0..strata.len() {
            for j in i + 1..strata.len() {
                assert_ne!(strata[i].seed_base, strata[j].seed_base);
            }
        }
        // No laxity window → one unstratified, unsplittable stratum.
        let mut flat = Scenario::vi_uniprocessor(2048);
        if let tocttou_workloads::scenario::VictimSpec::Vi(c) = &mut flat.victim {
            c.prologue = tocttou_sim::dist::DurationDist::const_us(5.0);
        }
        let (strata, _, span) = initial_partition(&flat, &cfg);
        assert_eq!(strata.len(), 1);
        assert_eq!(span, None);
        assert!(!strata[0].splittable);
        assert_eq!(strata[0].weight, 1.0);
    }

    #[test]
    fn allocation_tops_up_pilots_then_follows_neyman() {
        let cfg = EstimateConfig::default();
        let s = Scenario::vi_uniprocessor(2048);
        let (mut strata, _, _) = initial_partition(&s, &cfg);
        // Fresh strata: the wave is pure pilot top-up.
        let alloc = allocate_wave(&strata, &cfg);
        assert_eq!(alloc.len(), 8);
        assert!(alloc.iter().all(|&(_, add)| add == cfg.pilot_rounds));
        // Piloted strata: exactly wave_rounds, skewed toward the stratum
        // with successes and near misses.
        for st in strata.iter_mut() {
            st.rounds = cfg.pilot_rounds;
        }
        strata[5].successes = 6;
        strata[5].near = 20;
        let alloc = allocate_wave(&strata, &cfg);
        let total: u64 = alloc.iter().map(|&(_, add)| add).sum();
        assert_eq!(total, cfg.wave_rounds, "largest remainder sums exactly");
        let hot = alloc.iter().find(|&&(h, _)| h == 5).unwrap().1;
        let cold = alloc.iter().find(|&&(h, _)| h == 0).unwrap().1;
        assert!(hot > 3 * cold, "Neyman favors the live stratum: {alloc:?}");
        // Retired strata never receive rounds.
        strata[3].retired = true;
        let alloc = allocate_wave(&strata, &cfg);
        assert!(alloc.iter().all(|&(h, _)| h != 3));
        // Deterministic.
        assert_eq!(alloc, allocate_wave(&strata, &cfg));
    }

    #[test]
    fn splitting_targets_sparse_signal_and_retires_the_parent() {
        let cfg = EstimateConfig::default();
        let root = Scenario::vi_uniprocessor(2048);
        let (mut strata, mut scenarios, span) = initial_partition(&root, &cfg);
        for st in strata.iter_mut() {
            st.rounds = 64;
        }
        // Stratum 7: sparse milestone signal → the split target.
        strata[7].near = 5;
        // Stratum 2: saturated signal (homogeneous) → must not split.
        strata[2].near = 40;
        maybe_split(&mut strata, &mut scenarios, &root, span, &cfg);
        assert_eq!(strata.len(), 10, "one parent split into two children");
        assert!(strata[7].retired);
        assert!(!strata[2].retired);
        let (a, b) = (&strata[8], &strata[9]);
        assert_eq!(a.lo_n, 87_500_000);
        assert_eq!(b.hi_n, 100_000_000);
        assert_eq!(b.lo_n, a.hi_n + 1, "children partition the parent");
        assert!((a.weight + b.weight - strata[7].weight).abs() < 1e-12);
        assert_eq!(a.depth, 1);
        assert_eq!(scenarios[8].laxity_window_ns(), Some((a.lo_n, a.hi_n)));
        // With no signal anywhere, nothing splits.
        let (mut quiet, mut qs, span) = initial_partition(&root, &cfg);
        for st in quiet.iter_mut() {
            st.rounds = 64;
        }
        maybe_split(&mut quiet, &mut qs, &root, span, &cfg);
        assert_eq!(quiet.len(), 8);
    }

    #[test]
    fn single_stratum_sequential_stopping_on_a_common_event() {
        // vi SMP succeeds ~100 % of the time: the Wilson interval meets a
        // loose target within the first waves, far under the budget.
        let mut s = Scenario::vi_smp(1024);
        s.victim = {
            // Strip the laxity axis so the run exercises the pure
            // sequential-stopping path (one stratum, Wilson interval).
            let mut v = s.victim.clone();
            if let tocttou_workloads::scenario::VictimSpec::Vi(c) = &mut v {
                c.prologue = tocttou_sim::dist::DurationDist::const_us(50.0);
            }
            v
        };
        let cfg = EstimateConfig {
            target_rel_half_width: 0.1,
            max_rounds: 4_000,
            ..Default::default()
        };
        let run = run_estimate(&s, &cfg).unwrap();
        let out = &run.outcome;
        assert!(!out.stratified);
        assert!(out.converged, "{out}");
        assert!(out.rate > 0.8, "vi SMP is near-certain: {}", out.rate);
        assert!(out.simulated_rounds < cfg.max_rounds);
        assert_eq!(out.strata.len(), 1);
        assert_eq!(run.cached_rounds, 0, "memory mode has no cache");
        assert_eq!(run.computed_rounds, out.simulated_rounds);
        // The report round-trips through JSON (no non-finite numbers).
        let text = serde_json::to_string(out).unwrap();
        assert!(text.contains("\"converged\":true"), "{text}");
    }
}
