//! Shared parameter-grid construction for sweeps and figures.
//!
//! Every headline figure is a sweep over one axis — file size (laxity,
//! Figures 6/7), detection period `D` (Formula (1)), CPU count, or the
//! pipelined-attacker switch (Figure 11). This module is the single place
//! those grids are built: the figure renderers, the `sweep` binary and the
//! benches all consume [`Grid`]/[`GridPoint`] instead of hand-rolling
//! per-figure scenario loops.
//!
//! A [`GridPoint`] is a [`Family`] (one of the named [`Scenario`]
//! constructors) plus a file size, optional overrides for the swept axes,
//! and a `seed_salt` added to the sweep's base seed — so a grid point's
//! standalone equivalent is exactly `run_mc(point.scenario(), McConfig {
//! base_seed: base + salt, .. })`, which is what the sweep engine's
//! byte-identity guarantee is stated against.

use serde::Serialize;
use tocttou_sim::time::SimDuration;
use tocttou_workloads::scenario::{AttackerSpec, Scenario};

/// A named scenario constructor — the base configuration a grid varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// `Scenario::vi_uniprocessor` (Figure 6's victim).
    ViUniprocessor,
    /// `Scenario::vi_smp` (Figure 7 / Table 1).
    ViSmp,
    /// `Scenario::gedit_uniprocessor`.
    GeditUniprocessor,
    /// `Scenario::gedit_smp` (Figure 8).
    GeditSmp,
    /// `Scenario::gedit_multicore_v1` (Figure 9, cold attacker).
    GeditMulticoreV1,
    /// `Scenario::gedit_multicore_v2` (Figure 9, pre-warmed attacker).
    GeditMulticoreV2,
    /// `Scenario::pipelined_attack` (Section 7 / Figure 11).
    PipelinedAttack,
    /// `Scenario::hardlink_vi_smp` (hard-link swap: a second name of the
    /// privileged inode instead of a symlink).
    HardlinkSwap,
    /// DSL `library::tmp_logrotate` — `<stat, open>` tempfile race.
    TmpLogrotate,
    /// DSL `library::chown_walk` — `<stat, chown>` recursive-chown walk.
    ChownWalk,
    /// DSL `library::tmp_sweeper` — `<stat, chmod>` cache sweeper.
    TmpSweeper,
    /// DSL `library::maildrop` — `<lstat, open>` local-delivery append.
    Maildrop,
    /// DSL `library::installer_read` — `<access, open>` sendmail pattern.
    InstallerRead,
    /// DSL `library::pkg_installer` — `<access, chown>` staged installer.
    PkgInstaller,
    /// DSL `library::mktemp_reopen` — `<creat, open>` scratch reopen.
    MktempReopen,
    /// DSL `library::sock_bind` — `<creat, chmod>` bind-then-loosen race.
    SockBind,
    /// DSL `library::vi_crowd` — `<creat, chown>` with three competing
    /// attackers.
    ViCrowd,
    /// DSL `library::swap_contest` — symlink-vs-hardlink attackers racing
    /// each other for one vi window.
    SwapContest,
}

impl Family {
    /// Every family, in a stable order.
    pub const ALL: [Family; 18] = [
        Family::ViUniprocessor,
        Family::ViSmp,
        Family::GeditUniprocessor,
        Family::GeditSmp,
        Family::GeditMulticoreV1,
        Family::GeditMulticoreV2,
        Family::PipelinedAttack,
        Family::HardlinkSwap,
        Family::TmpLogrotate,
        Family::ChownWalk,
        Family::TmpSweeper,
        Family::Maildrop,
        Family::InstallerRead,
        Family::PkgInstaller,
        Family::MktempReopen,
        Family::SockBind,
        Family::ViCrowd,
        Family::SwapContest,
    ];

    /// The ten DSL-compiled families of the taxonomy library, in the
    /// library's own order (distinct `<check, use>` pairs first).
    pub const DSL_LIBRARY: [Family; 10] = [
        Family::TmpLogrotate,
        Family::ChownWalk,
        Family::TmpSweeper,
        Family::Maildrop,
        Family::InstallerRead,
        Family::PkgInstaller,
        Family::MktempReopen,
        Family::SockBind,
        Family::ViCrowd,
        Family::SwapContest,
    ];

    /// The CLI spelling (`--family` flag and sweep output).
    pub fn name(self) -> &'static str {
        match self {
            Family::ViUniprocessor => "vi-uni",
            Family::ViSmp => "vi-smp",
            Family::GeditUniprocessor => "gedit-uni",
            Family::GeditSmp => "gedit-smp",
            Family::GeditMulticoreV1 => "gedit-mc-v1",
            Family::GeditMulticoreV2 => "gedit-mc-v2",
            Family::PipelinedAttack => "pipelined",
            Family::HardlinkSwap => "hardlink",
            Family::TmpLogrotate => "tmp-logrotate",
            Family::ChownWalk => "chown-walk",
            Family::TmpSweeper => "tmp-sweeper",
            Family::Maildrop => "maildrop",
            Family::InstallerRead => "installer-read",
            Family::PkgInstaller => "pkg-installer",
            Family::MktempReopen => "mktemp-reopen",
            Family::SockBind => "sock-bind",
            Family::ViCrowd => "vi-crowd",
            Family::SwapContest => "swap-contest",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == s)
    }

    /// Builds the family's scenario at `file_size` bytes.
    pub fn build(self, file_size: u64) -> Scenario {
        use tocttou_workloads::dsl::library;
        match self {
            Family::ViUniprocessor => Scenario::vi_uniprocessor(file_size),
            Family::ViSmp => Scenario::vi_smp(file_size),
            Family::GeditUniprocessor => Scenario::gedit_uniprocessor(file_size),
            Family::GeditSmp => Scenario::gedit_smp(file_size),
            Family::GeditMulticoreV1 => Scenario::gedit_multicore_v1(file_size),
            Family::GeditMulticoreV2 => Scenario::gedit_multicore_v2(file_size),
            Family::PipelinedAttack => Scenario::pipelined_attack(file_size),
            Family::HardlinkSwap => Scenario::hardlink_vi_smp(file_size),
            Family::TmpLogrotate => library::tmp_logrotate(file_size).compile(),
            Family::ChownWalk => library::chown_walk(file_size).compile(),
            Family::TmpSweeper => library::tmp_sweeper(file_size).compile(),
            Family::Maildrop => library::maildrop(file_size).compile(),
            Family::InstallerRead => library::installer_read(file_size).compile(),
            Family::PkgInstaller => library::pkg_installer(file_size).compile(),
            Family::MktempReopen => library::mktemp_reopen(file_size).compile(),
            Family::SockBind => library::sock_bind(file_size).compile(),
            Family::ViCrowd => library::vi_crowd(file_size).compile(),
            Family::SwapContest => library::swap_contest(file_size).compile(),
        }
    }

    /// A sensible default file size for quick sweeps (the sizes the
    /// paper's own exhibits use: ~100 KB vi saves, 2 KB gedit documents;
    /// the DSL families use their library calibration sizes).
    pub fn default_file_size(self) -> u64 {
        match self {
            Family::ViUniprocessor
            | Family::ViSmp
            | Family::HardlinkSwap
            | Family::ViCrowd
            | Family::SwapContest => 100 * 1024,
            Family::PipelinedAttack | Family::PkgInstaller => 512,
            Family::TmpLogrotate | Family::Maildrop => 4096,
            Family::TmpSweeper | Family::InstallerRead | Family::MktempReopen => 1024,
            Family::SockBind => 256,
            _ => 2048,
        }
    }
}

/// One grid point: a base scenario plus the swept-axis overrides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Base scenario constructor.
    pub family: Family,
    /// Document size handed to the constructor, bytes.
    pub file_size: u64,
    /// Scales the attacker's checking-loop gap — the detection period `D`
    /// of Formula (1). `0.5` halves `D` (a faster attacker), `2.0` doubles
    /// it.
    pub d_scale: Option<f64>,
    /// Overrides the machine's CPU count.
    pub cpus: Option<usize>,
    /// Forces the pipelined two-thread attacker on (`true`) or replaces a
    /// pipelined attacker with the sequential one (`false`).
    pub pipelined: Option<bool>,
    /// Added to the sweep's base seed to form this point's per-point base
    /// seed, so historical per-figure seed schedules (e.g. `seed +
    /// size_kb`) survive the port to `run_sweep` unchanged.
    pub seed_salt: u64,
}

impl GridPoint {
    /// A point with no overrides and salt 0.
    pub fn new(family: Family, file_size: u64) -> GridPoint {
        GridPoint {
            family,
            file_size,
            d_scale: None,
            cpus: None,
            pipelined: None,
            seed_salt: 0,
        }
    }

    /// Returns the point with the given seed salt.
    pub fn with_salt(mut self, salt: u64) -> GridPoint {
        self.seed_salt = salt;
        self
    }

    /// Returns the point with the detection-period scale applied.
    pub fn with_d_scale(mut self, scale: f64) -> GridPoint {
        self.d_scale = Some(scale);
        self
    }

    /// Returns the point with the CPU-count override applied.
    pub fn with_cpus(mut self, cpus: usize) -> GridPoint {
        self.cpus = Some(cpus);
        self
    }

    /// Returns the point with the pipelined-attacker switch applied.
    pub fn with_pipelined(mut self, on: bool) -> GridPoint {
        self.pipelined = Some(on);
        self
    }

    /// Materializes the point into a runnable [`Scenario`], applying the
    /// overrides and suffixing the name so per-point outputs stay
    /// distinguishable.
    pub fn scenario(&self) -> Scenario {
        let mut s = self.family.build(self.file_size);
        if let Some(k) = self.d_scale {
            match &mut s.attacker {
                AttackerSpec::V1(cfg) | AttackerSpec::V2(cfg) | AttackerSpec::Hardlink(cfg) => {
                    cfg.loop_gap = cfg.loop_gap.mul_f64(k);
                }
                AttackerSpec::Pipelined { cfg, .. } => {
                    cfg.loop_gap = cfg.loop_gap.mul_f64(k);
                }
                AttackerSpec::Compiled(profiles) => {
                    for p in profiles {
                        p.loop_gap = p.loop_gap.mul_f64(k);
                    }
                }
            }
            s.name = format!("{}+dx{}", s.name, trim_float(k));
        }
        if let Some(n) = self.cpus {
            s.machine.cpus = n;
            s.name = format!("{}+cpu{n}", s.name);
        }
        match self.pipelined {
            Some(true) => {
                if let AttackerSpec::V1(cfg) | AttackerSpec::V2(cfg) = s.attacker.clone() {
                    s.attacker = AttackerSpec::Pipelined {
                        cfg,
                        poll_gap: SimDuration::from_micros(1),
                    };
                    s.name = format!("{}+pipe", s.name);
                }
            }
            Some(false) => {
                if let AttackerSpec::Pipelined { cfg, .. } = s.attacker.clone() {
                    s.attacker = AttackerSpec::V1(cfg);
                    s.name = format!("{}+seq", s.name);
                }
            }
            None => {}
        }
        s
    }

    /// The serializable description embedded in sweep outputs.
    pub fn describe(&self) -> PointDesc {
        PointDesc {
            family: self.family.name().to_string(),
            file_size: self.file_size,
            d_scale: self.d_scale,
            cpus: self.cpus,
            pipelined: self.pipelined,
            seed_salt: self.seed_salt,
        }
    }
}

/// Renders a scale factor with two decimals at most, without trailing
/// zeros, so scenario names stay readable (`0.5`, `2`, `0.83`).
fn trim_float(k: f64) -> String {
    let s = format!("{k:.2}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// Serializable description of a [`GridPoint`] (family by CLI name).
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct PointDesc {
    /// [`Family::name`].
    pub family: String,
    /// Document size, bytes.
    pub file_size: u64,
    /// Detection-period scale override, if any.
    pub d_scale: Option<f64>,
    /// CPU-count override, if any.
    pub cpus: Option<usize>,
    /// Pipelined-attacker override, if any.
    pub pipelined: Option<bool>,
    /// Per-point seed salt.
    pub seed_salt: u64,
}

/// An ordered set of grid points — the input to `run_sweep`.
#[derive(Debug, Clone, Default)]
pub struct Grid {
    /// The points, in output order.
    pub points: Vec<GridPoint>,
}

impl Grid {
    /// A grid over explicit points.
    pub fn from_points(points: Vec<GridPoint>) -> Grid {
        Grid { points }
    }

    /// The file-size axis used by Figures 6 and 7: one point per entry of
    /// `sizes_kb`, with `seed_salt = size_kb` (the per-figure seed
    /// schedule predating the sweep engine).
    pub fn file_size_kb_sweep(family: Family, sizes_kb: &[u64]) -> Grid {
        Grid {
            points: sizes_kb
                .iter()
                .map(|&kb| GridPoint::new(family, kb * 1024).with_salt(kb))
                .collect(),
        }
    }

    /// The detection-period axis of Formula (1): `D` scaled by each entry
    /// of `scales`, salts 0, 1, 2, ….
    pub fn d_sweep(family: Family, file_size: u64, scales: &[f64]) -> Grid {
        Grid {
            points: scales
                .iter()
                .enumerate()
                .map(|(i, &k)| {
                    GridPoint::new(family, file_size)
                        .with_d_scale(k)
                        .with_salt(i as u64)
                })
                .collect(),
        }
    }

    /// The CPU-count axis (the paper's uniprocessor → SMP → multicore
    /// escalation on one scenario), salts 0, 1, 2, ….
    pub fn cpu_sweep(family: Family, file_size: u64, cpus: &[usize]) -> Grid {
        Grid {
            points: cpus
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    GridPoint::new(family, file_size)
                        .with_cpus(n)
                        .with_salt(i as u64)
                })
                .collect(),
        }
    }

    /// The Figure 11 pair: the pipelined attacker against its sequential
    /// control, same victim and size.
    pub fn pipelined_pair(file_size: u64) -> Grid {
        Grid {
            points: vec![
                GridPoint::new(Family::PipelinedAttack, file_size).with_salt(0),
                GridPoint::new(Family::PipelinedAttack, file_size)
                    .with_pipelined(false)
                    .with_salt(1),
            ],
        }
    }

    /// The swap-technique pair: the classic vi SMP **symlink** swap next
    /// to its **hardlink** variant, same victim, machine, and document
    /// size — isolating what the planted object (pointer vs second name)
    /// changes about success rate and detectability.
    pub fn swap_technique_pair(file_size: u64) -> Grid {
        Grid {
            points: vec![
                GridPoint::new(Family::ViSmp, file_size).with_salt(0),
                GridPoint::new(Family::HardlinkSwap, file_size).with_salt(1),
            ],
        }
    }

    /// The taxonomy axis: one point per DSL-library family at its
    /// calibration size, salts 0, 1, 2, … — together the ten scenarios
    /// cover the paper's `<check, use>` pair taxonomy.
    pub fn taxonomy_library() -> Grid {
        Grid {
            points: Family::DSL_LIBRARY
                .into_iter()
                .enumerate()
                .map(|(i, f)| GridPoint::new(f, f.default_file_size()).with_salt(i as u64))
                .collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// The `--grid` axis choices of the `sweep` binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridKind {
    /// Detection-period (`D`) scale ladder.
    D,
    /// File-size ladder (Figure 7's axis).
    Size,
    /// CPU-count ladder.
    Cpus,
    /// Pipelined-vs-sequential pair.
    Pipelined,
    /// Symlink-vs-hardlink swap pair.
    Swap,
    /// One point per DSL taxonomy-library scenario.
    Taxonomy,
}

impl GridKind {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<GridKind> {
        match s {
            "d" => Some(GridKind::D),
            "size" => Some(GridKind::Size),
            "cpus" => Some(GridKind::Cpus),
            "pipelined" => Some(GridKind::Pipelined),
            "swap" => Some(GridKind::Swap),
            "taxonomy" => Some(GridKind::Taxonomy),
            _ => None,
        }
    }

    /// Builds the standard grid for this axis: `points` points on
    /// `family` at `file_size` bytes.
    ///
    /// * `D` — scales spread linearly over 0.25×…2× the family's default
    ///   checking gap.
    /// * `Size` — Figure 7's ladder, `points` sizes of 40 KB steps.
    /// * `Cpus` — 1, 2, 4, … doubling up to `points` entries.
    /// * `Pipelined` — the Figure 11 pair (ignores `points`).
    /// * `Swap` — the symlink-vs-hardlink pair (ignores `points` and
    ///   `family`).
    /// * `Taxonomy` — the ten-scenario DSL library (ignores every
    ///   argument; each family runs at its calibration size).
    pub fn build(self, family: Family, file_size: u64, points: usize) -> Grid {
        let n = points.max(1);
        match self {
            GridKind::D => {
                let scales: Vec<f64> = if n == 1 {
                    vec![1.0]
                } else {
                    (0..n)
                        .map(|i| 0.25 + i as f64 * (2.0 - 0.25) / (n - 1) as f64)
                        .collect()
                };
                Grid::d_sweep(family, file_size, &scales)
            }
            GridKind::Size => {
                let sizes_kb: Vec<u64> = (1..=n as u64).map(|i| i * 40).collect();
                Grid::file_size_kb_sweep(family, &sizes_kb)
            }
            GridKind::Cpus => {
                let cpus: Vec<usize> = (0..n.min(6)).map(|i| 1 << i).collect();
                Grid::cpu_sweep(family, file_size, &cpus)
            }
            GridKind::Pipelined => Grid::pipelined_pair(file_size),
            GridKind::Swap => Grid::swap_technique_pair(file_size),
            GridKind::Taxonomy => Grid::taxonomy_library(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tocttou_sim::time::SimDuration;

    #[test]
    fn family_names_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.name()), Some(f));
        }
        assert_eq!(Family::parse("nonsense"), None);
    }

    #[test]
    fn plain_point_matches_named_constructor() {
        let s = GridPoint::new(Family::GeditSmp, 2048).scenario();
        let direct = Scenario::gedit_smp(2048);
        assert_eq!(s.name, direct.name);
        assert_eq!(s.machine.cpus, direct.machine.cpus);
    }

    #[test]
    fn d_scale_scales_the_checking_gap() {
        let base = GridPoint::new(Family::ViSmp, 1024).scenario();
        let halved = GridPoint::new(Family::ViSmp, 1024)
            .with_d_scale(0.5)
            .scenario();
        let gap = |s: &Scenario| match &s.attacker {
            AttackerSpec::V1(c) | AttackerSpec::V2(c) | AttackerSpec::Hardlink(c) => c.loop_gap,
            AttackerSpec::Pipelined { cfg, .. } => cfg.loop_gap,
            AttackerSpec::Compiled(profiles) => profiles[0].loop_gap,
        };
        assert_eq!(gap(&halved), gap(&base).mul_f64(0.5));
        assert!(halved.name.ends_with("+dx0.5"), "{}", halved.name);
    }

    #[test]
    fn cpu_override_rewrites_the_machine() {
        let s = GridPoint::new(Family::GeditSmp, 2048)
            .with_cpus(4)
            .scenario();
        assert_eq!(s.machine.cpus, 4);
        assert!(s.machine.validate().is_ok(), "override keeps spec valid");
    }

    #[test]
    fn pipelined_switch_swaps_attacker_shape() {
        let on = GridPoint::new(Family::GeditSmp, 2048)
            .with_pipelined(true)
            .scenario();
        match on.attacker {
            AttackerSpec::Pipelined { poll_gap, .. } => {
                assert_eq!(poll_gap, SimDuration::from_micros(1));
            }
            other => panic!("expected pipelined attacker, got {other:?}"),
        }
        let off = GridPoint::new(Family::PipelinedAttack, 512)
            .with_pipelined(false)
            .scenario();
        assert!(matches!(off.attacker, AttackerSpec::V1(_)));
        // The off-point mirrors the named sequential control semantically.
        let named = Scenario::sequential_attack(512);
        assert!(matches!(named.attacker, AttackerSpec::V1(_)));
    }

    #[test]
    fn taxonomy_grid_covers_the_dsl_library() {
        let g = GridKind::Taxonomy.build(Family::ViSmp, 1024, 3);
        assert_eq!(g.len(), Family::DSL_LIBRARY.len());
        for (i, p) in g.points.iter().enumerate() {
            assert_eq!(p.seed_salt, i as u64);
            assert_eq!(p.file_size, p.family.default_file_size());
            // Every point materializes into a runnable compiled scenario.
            let s = p.scenario();
            assert!(
                matches!(s.attacker, AttackerSpec::Compiled(_)),
                "{}",
                s.name
            );
        }
    }

    #[test]
    fn figure_grids_keep_historical_salts() {
        let g = Grid::file_size_kb_sweep(Family::ViSmp, &[40, 400, 1000]);
        assert_eq!(
            g.points.iter().map(|p| p.seed_salt).collect::<Vec<_>>(),
            [40, 400, 1000],
            "salt = size_kb is the pre-sweep per-figure seed schedule"
        );
        assert_eq!(g.points[1].file_size, 400 * 1024);
    }

    #[test]
    fn grid_kind_builders_cover_requested_points() {
        let d = GridKind::D.build(Family::GeditSmp, 2048, 8);
        assert_eq!(d.len(), 8);
        assert_eq!(d.points[0].d_scale, Some(0.25));
        assert_eq!(d.points[7].d_scale, Some(2.0));
        let sizes = GridKind::Size.build(Family::ViSmp, 0, 3);
        assert_eq!(
            sizes.points.iter().map(|p| p.file_size).collect::<Vec<_>>(),
            [40 * 1024, 80 * 1024, 120 * 1024]
        );
        let cpus = GridKind::Cpus.build(Family::GeditSmp, 2048, 4);
        assert_eq!(
            cpus.points.iter().flat_map(|p| p.cpus).collect::<Vec<_>>(),
            [1, 2, 4, 8]
        );
        assert_eq!(GridKind::Pipelined.build(Family::ViSmp, 512, 9).len(), 2);
        let swap = GridKind::Swap.build(Family::ViSmp, 100 * 1024, 9);
        assert_eq!(
            swap.points.iter().map(|p| p.family).collect::<Vec<_>>(),
            [Family::ViSmp, Family::HardlinkSwap]
        );
    }
}
