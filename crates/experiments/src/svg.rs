//! Minimal dependency-free SVG charts for the reproduced figures.
//!
//! The paper's exhibits are one scatter/line chart (Figures 6 and 7), two
//! event timelines (Figures 8 and 10) and one horizontal bar chart
//! (Figure 11). This module renders exactly those shapes — axes, ticks,
//! series, legend — as plain SVG strings, so `repro` can drop `fig6.svg`
//! etc. next to the JSON artifacts without pulling a plotting stack.

/// One named line/scatter series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
    /// Stroke color (any SVG color string).
    pub color: String,
}

/// Chart frame configuration.
#[derive(Debug, Clone)]
pub struct ChartConfig {
    /// Title rendered above the plot.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width: 720,
            height: 440,
        }
    }
}

const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn nice_ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    if hi <= lo || !lo.is_finite() || !hi.is_finite() {
        return vec![lo];
    }
    let raw_step = (hi - lo) / target.max(1) as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = mag
        * if norm < 1.5 {
            1.0
        } else if norm < 3.0 {
            2.0
        } else if norm < 7.0 {
            5.0
        } else {
            10.0
        };
    let mut ticks = Vec::new();
    let mut t = (lo / step).ceil() * step;
    while t <= hi + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 1000.0 || v.fract().abs() < 1e-9 {
        format!("{:.0}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// Renders a line chart with markers over the given series.
///
/// Axis ranges are derived from the data (with a y floor of 0 when all
/// values are non-negative, matching how the paper plots rates and times).
///
/// # Panics
///
/// Panics if every series is empty.
pub fn line_chart(cfg: &ChartConfig, series: &[Series]) -> String {
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    assert!(!all.is_empty(), "line chart needs at least one point");
    let (mut x_lo, mut x_hi) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.0), hi.max(p.0))
        });
    let (mut y_lo, mut y_hi) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.1), hi.max(p.1))
        });
    if y_lo >= 0.0 {
        y_lo = 0.0;
    }
    if (x_hi - x_lo).abs() < 1e-12 {
        x_hi = x_lo + 1.0;
        x_lo -= 1.0;
    }
    if (y_hi - y_lo).abs() < 1e-12 {
        y_hi = y_lo + 1.0;
    }
    y_hi *= 1.05;

    let w = cfg.width as f64;
    let h = cfg.height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let sx = |x: f64| MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w;
    let sy = |y: f64| MARGIN_T + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h;

    let mut out = String::new();
    out.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#
    ));
    out.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    out.push_str(&format!(
        r#"<text x="{:.1}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        w / 2.0,
        esc(&cfg.title)
    ));
    // Axes.
    out.push_str(&format!(
        r#"<line x1="{MARGIN_L}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black"/>"#,
        h - MARGIN_B,
        w - MARGIN_R,
        h - MARGIN_B
    ));
    out.push_str(&format!(
        r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{:.1}" stroke="black"/>"#,
        h - MARGIN_B
    ));
    // Ticks + grid.
    for t in nice_ticks(x_lo, x_hi, 8) {
        let x = sx(t);
        out.push_str(&format!(
            r#"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="black"/>"#,
            h - MARGIN_B,
            h - MARGIN_B + 4.0
        ));
        out.push_str(&format!(
            r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
            h - MARGIN_B + 18.0,
            fmt_tick(t)
        ));
    }
    for t in nice_ticks(y_lo, y_hi, 6) {
        let y = sy(t);
        out.push_str(&format!(
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            w - MARGIN_R
        ));
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
            MARGIN_L - 6.0,
            y + 4.0,
            fmt_tick(t)
        ));
    }
    // Axis labels.
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 12.0,
        esc(&cfg.x_label)
    ));
    out.push_str(&format!(
        r#"<text x="16" y="{:.1}" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        esc(&cfg.y_label)
    ));
    // Series.
    for s in series {
        if s.points.is_empty() {
            continue;
        }
        let path: Vec<String> = s
            .points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                format!(
                    "{}{:.1},{:.1}",
                    if i == 0 { "M" } else { "L" },
                    sx(x),
                    sy(y)
                )
            })
            .collect();
        out.push_str(&format!(
            r#"<path d="{}" fill="none" stroke="{}" stroke-width="2"/>"#,
            path.join(" "),
            s.color
        ));
        for &(x, y) in &s.points {
            out.push_str(&format!(
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{}"/>"#,
                sx(x),
                sy(y),
                s.color
            ));
        }
    }
    // Legend.
    for (i, s) in series.iter().enumerate() {
        let y = MARGIN_T + 8.0 + i as f64 * 18.0;
        out.push_str(&format!(
            r#"<rect x="{:.1}" y="{:.1}" width="12" height="12" fill="{}"/>"#,
            MARGIN_L + 10.0,
            y,
            s.color
        ));
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
            MARGIN_L + 28.0,
            y + 10.0,
            esc(&s.label)
        ));
    }
    out.push_str("</svg>");
    out
}

/// One horizontal bar group (Figure 11 style): labelled segments on a
/// shared time axis.
#[derive(Debug, Clone)]
pub struct BarRow {
    /// Row label (left gutter).
    pub label: String,
    /// `(start, end, color, segment-label)` spans in data coordinates.
    pub spans: Vec<(f64, f64, String, String)>,
}

/// Renders a horizontal span chart (the Figure 11 shape).
///
/// # Panics
///
/// Panics if `rows` is empty or contains no spans.
pub fn span_chart(cfg: &ChartConfig, rows: &[BarRow]) -> String {
    let spans: Vec<&(f64, f64, String, String)> =
        rows.iter().flat_map(|r| r.spans.iter()).collect();
    assert!(!spans.is_empty(), "span chart needs data");
    let x_lo = 0.0f64;
    let x_hi = spans
        .iter()
        .fold(f64::NEG_INFINITY, |hi, s| hi.max(s.1))
        .max(1.0)
        * 1.02;

    let w = cfg.width as f64;
    let row_h = 34.0;
    let h = MARGIN_T + rows.len() as f64 * row_h + MARGIN_B;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let sx = |x: f64| MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w;

    let mut out = String::new();
    out.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h:.0}" viewBox="0 0 {w} {h:.0}" font-family="sans-serif" font-size="12">"#
    ));
    out.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    out.push_str(&format!(
        r#"<text x="{:.1}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        w / 2.0,
        esc(&cfg.title)
    ));
    for (i, row) in rows.iter().enumerate() {
        let y = MARGIN_T + i as f64 * row_h;
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
            MARGIN_L - 8.0,
            y + row_h / 2.0 + 4.0,
            esc(&row.label)
        ));
        for (start, end, color, label) in &row.spans {
            let x0 = sx(*start);
            let x1 = sx(*end).max(x0 + 1.5);
            out.push_str(&format!(
                r#"<rect x="{x0:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{color}" stroke="black" stroke-width="0.5"><title>{}</title></rect>"#,
                y + 6.0,
                x1 - x0,
                row_h - 12.0,
                esc(label)
            ));
        }
    }
    let axis_y = MARGIN_T + rows.len() as f64 * row_h + 6.0;
    out.push_str(&format!(
        r#"<line x1="{MARGIN_L}" y1="{axis_y:.1}" x2="{:.1}" y2="{axis_y:.1}" stroke="black"/>"#,
        w - MARGIN_R
    ));
    for t in nice_ticks(x_lo, x_hi, 8) {
        let x = sx(t);
        out.push_str(&format!(
            r#"<line x1="{x:.1}" y1="{axis_y:.1}" x2="{x:.1}" y2="{:.1}" stroke="black"/>"#,
            axis_y + 4.0
        ));
        out.push_str(&format!(
            r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
            axis_y + 18.0,
            fmt_tick(t)
        ));
    }
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 10.0,
        esc(&cfg.x_label)
    ));
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChartConfig {
        ChartConfig {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            ..ChartConfig::default()
        }
    }

    #[test]
    fn line_chart_contains_series_and_axes() {
        let svg = line_chart(
            &cfg(),
            &[
                Series {
                    label: "observed".into(),
                    points: vec![(100.0, 0.016), (1000.0, 0.178)],
                    color: "#d62728".into(),
                },
                Series {
                    label: "model".into(),
                    points: vec![(100.0, 0.018), (1000.0, 0.184)],
                    color: "#1f77b4".into(),
                },
            ],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("observed"));
        assert!(svg.contains("model"));
        assert!(svg.matches("<path").count() == 2);
        assert!(svg.matches("<circle").count() == 4);
    }

    #[test]
    fn line_chart_escapes_labels() {
        let mut c = cfg();
        c.title = "L & D <µs>".into();
        let svg = line_chart(
            &c,
            &[Series {
                label: "s".into(),
                points: vec![(0.0, 1.0)],
                color: "red".into(),
            }],
        );
        assert!(svg.contains("L &amp; D &lt;µs&gt;"));
    }

    #[test]
    fn span_chart_renders_rows() {
        let svg = span_chart(
            &cfg(),
            &[
                BarRow {
                    label: "sequential".into(),
                    spans: vec![
                        (0.0, 4.5, "#888".into(), "stat".into()),
                        (6.9, 40.9, "#d62728".into(), "unlink".into()),
                        (40.9, 45.4, "#1f77b4".into(), "symlink".into()),
                    ],
                },
                BarRow {
                    label: "parallel".into(),
                    spans: vec![(0.0, 4.5, "#888".into(), "stat".into())],
                },
            ],
        );
        assert!(svg.contains("sequential"));
        assert!(svg.contains("parallel"));
        assert_eq!(svg.matches("<rect").count(), 1 + 4, "bg + 4 spans");
        assert!(svg.contains("<title>unlink</title>"));
    }

    #[test]
    fn ticks_are_nice() {
        let ticks = nice_ticks(0.0, 1000.0, 8);
        assert!(ticks.contains(&0.0));
        assert!(ticks.contains(&1000.0));
        for w in ticks.windows(2) {
            assert!(
                (w[1] - w[0] - (ticks[1] - ticks[0])).abs() < 1e-9,
                "even spacing"
            );
        }
        assert!(nice_ticks(5.0, 5.0, 4).len() == 1, "degenerate range");
    }

    #[test]
    #[should_panic(expected = "needs at least one point")]
    fn empty_line_chart_panics() {
        let _ = line_chart(&cfg(), &[]);
    }
}
