//! Chrome `trace_event` / Perfetto JSON export of a traced round.
//!
//! [`export_perfetto`] renders one spans-armed round as a JSON object in
//! the Chrome trace-event format (the JSON flavour Perfetto,
//! `chrome://tracing` and `ui.perfetto.dev` all load): an object with a
//! `traceEvents` array of `"X"` complete events (bars with `ts`/`dur`)
//! and `"i"` instant events (markers), timestamps in microseconds.
//!
//! The track layout groups the round the way the paper's figures do:
//!
//! * **`cpus`** (pid 1) — one track per logical CPU, a bar per dispatch
//!   interval named after the running process, plus `bg` bars for
//!   background kernel activity;
//! * **`semaphores`** (pid 2) — one track per kernel semaphore, a bar
//!   per hold interval (from the span ring's `SemHold` spans);
//! * **`forensics`** (pid 3) — one track per window owner with a bar per
//!   closed check→use window, and instant markers for every classified
//!   attacker strike and every passive-detector event.
//!
//! Requires a spans-armed kernel ([`MachineSpec::with_spans`]): the
//! semaphore and forensics tracks read the span ring and the forensics
//! event logs, which off-by-default Monte-Carlo rounds never populate.
//!
//! [`MachineSpec::with_spans`]: tocttou_os::machine::MachineSpec::with_spans

use serde::Value;
use std::io::{self, Write};
use tocttou_os::event::OsEvent;
use tocttou_os::ids::Pid;
use tocttou_os::kernel::Kernel;
use tocttou_sim::span::SpanKind;
use tocttou_sim::time::SimTime;

/// Synthetic trace-event "process" ids grouping the tracks.
const TRACK_CPUS: u64 = 1;
const TRACK_SEMS: u64 = 2;
const TRACK_FORENSICS: u64 = 3;

fn us(t: SimTime) -> Value {
    Value::Float(t.as_nanos() as f64 / 1000.0)
}

fn dur_us(start: SimTime, end: SimTime) -> Value {
    Value::Float(end.saturating_since(start).as_nanos() as f64 / 1000.0)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// An `"X"` complete event: a named bar on track `(pid, tid)`.
fn complete(name: String, track: u64, tid: u64, start: SimTime, end: SimTime) -> (SimTime, Value) {
    (
        start,
        obj(vec![
            ("name", Value::Str(name)),
            ("ph", Value::Str("X".into())),
            ("ts", us(start)),
            ("dur", dur_us(start, end)),
            ("pid", Value::UInt(track)),
            ("tid", Value::UInt(tid)),
        ]),
    )
}

/// An `"i"` instant event: a marker on track `(pid, tid)`.
fn instant(name: String, track: u64, tid: u64, at: SimTime) -> (SimTime, Value) {
    (
        at,
        obj(vec![
            ("name", Value::Str(name)),
            ("ph", Value::Str("i".into())),
            ("ts", us(at)),
            ("pid", Value::UInt(track)),
            ("tid", Value::UInt(tid)),
            ("s", Value::Str("t".into())),
        ]),
    )
}

/// An `"M"` metadata event naming a synthetic process or thread.
fn metadata(kind: &str, track: u64, tid: Option<u64>, name: String) -> Value {
    let mut fields = vec![
        ("name", Value::Str(kind.into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::UInt(track)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid", Value::UInt(tid)));
    }
    fields.push(("args", obj(vec![("name", Value::Str(name))])));
    obj(fields)
}

/// Rebuilds per-CPU occupancy bars from the kernel event trace: each
/// dispatch opens a bar on that CPU's track, closed by whatever next moves
/// the process off the CPU (preempt, block, semaphore wait, exit, or
/// another dispatch); background kernel activity gets its own `bg` bars.
fn cpu_bars(kernel: &Kernel, names: &dyn Fn(Pid) -> String, out: &mut Vec<(SimTime, Value)>) {
    let cpus = kernel.machine().cpus;
    let mut running: Vec<Option<(Pid, SimTime)>> = vec![None; cpus];
    let mut on_cpu: Vec<Option<usize>> = Vec::new();
    let mut bg: Vec<Option<SimTime>> = vec![None; cpus];
    let close = |running: &mut Vec<Option<(Pid, SimTime)>>,
                 cpu: usize,
                 at: SimTime,
                 out: &mut Vec<(SimTime, Value)>| {
        if let Some((p, start)) = running[cpu].take() {
            out.push(complete(names(p), TRACK_CPUS, cpu as u64, start, at));
        }
    };
    let cpu_of = |on_cpu: &Vec<Option<usize>>, p: Pid| -> Option<usize> {
        on_cpu.get(p.index()).copied().flatten()
    };
    for r in kernel.trace().iter() {
        match &r.event {
            OsEvent::Dispatch { pid, cpu } => {
                let c = cpu.index();
                close(&mut running, c, r.at, out);
                if on_cpu.len() <= pid.index() {
                    on_cpu.resize(pid.index() + 1, None);
                }
                on_cpu[pid.index()] = Some(c);
                running[c] = Some((*pid, r.at));
            }
            OsEvent::Preempt { pid, cpu } => {
                let c = cpu.index();
                close(&mut running, c, r.at, out);
                on_cpu[pid.index()] = None;
            }
            OsEvent::SemEnqueue { pid, .. }
            | OsEvent::BlockTimed { pid }
            | OsEvent::Exit { pid } => {
                if let Some(c) = cpu_of(&on_cpu, *pid) {
                    close(&mut running, c, r.at, out);
                    on_cpu[pid.index()] = None;
                }
            }
            OsEvent::BgStart { cpu } => bg[cpu.index()] = Some(r.at),
            OsEvent::BgEnd { cpu } => {
                if let Some(start) = bg[cpu.index()].take() {
                    out.push(complete(
                        "bg".into(),
                        TRACK_CPUS,
                        cpu.index() as u64,
                        start,
                        r.at,
                    ));
                }
            }
            _ => {}
        }
    }
    let now = kernel.now();
    for (c, slot) in bg.iter_mut().enumerate().take(cpus) {
        close(&mut running, c, now, out);
        if let Some(start) = slot.take() {
            out.push(complete("bg".into(), TRACK_CPUS, c as u64, start, now));
        }
    }
}

/// Writes the round as a Chrome trace-event JSON object and returns the
/// number of entries in `traceEvents` (metadata included).
///
/// Call [`flush`](tocttou_os::forensics::WindowForensics::flush) on the
/// kernel's forensics first so leftover strikes are classified into the
/// strike log; `procs` labels the simulated processes on the CPU tracks
/// (unlisted pids fall back to `pid-N`).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn export_perfetto<W: Write>(
    w: &mut W,
    scenario: &str,
    seed: u64,
    kernel: &Kernel,
    procs: &[(Pid, &str)],
) -> io::Result<u64> {
    let names = |p: Pid| -> String {
        procs
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, n)| (*n).to_owned())
            .unwrap_or_else(|| format!("pid-{}", p.0))
    };

    // Timed events, assembled then stably sorted by timestamp so every
    // track's `ts` sequence is monotone (the CI smoke check's contract).
    let mut timed: Vec<(SimTime, Value)> = Vec::new();
    cpu_bars(kernel, &names, &mut timed);

    for span in kernel.spans().ring().iter() {
        if span.kind == SpanKind::SemHold {
            timed.push(complete(
                format!("hold {}", names(Pid(span.pid))),
                TRACK_SEMS,
                span.aux,
                span.start,
                span.end,
            ));
        }
    }

    for wr in kernel.forensics().window_log() {
        timed.push(complete(
            format!("window {}", wr.path),
            TRACK_FORENSICS,
            u64::from(wr.owner.0),
            wr.t_check,
            wr.t_use,
        ));
    }
    for sr in kernel.forensics().strike_log() {
        timed.push(instant(
            format!("strike {} ({})", sr.path, sr.outcome),
            TRACK_FORENSICS,
            u64::from(sr.by.0),
            sr.t,
        ));
    }
    for r in kernel.detections().iter() {
        timed.push(instant(
            format!("detected {} via {}", r.event.path, r.event.mutation.name()),
            TRACK_FORENSICS,
            u64::from(r.event.victim.0),
            r.at,
        ));
    }
    timed.sort_by_key(|(at, _)| *at);

    let mut events: Vec<Value> = vec![
        metadata("process_name", TRACK_CPUS, None, "cpus".into()),
        metadata("process_name", TRACK_SEMS, None, "semaphores".into()),
        metadata("process_name", TRACK_FORENSICS, None, "forensics".into()),
    ];
    for c in 0..kernel.machine().cpus {
        events.push(metadata(
            "thread_name",
            TRACK_CPUS,
            Some(c as u64),
            format!("cpu{c}"),
        ));
    }
    events.extend(timed.into_iter().map(|(_, v)| v));
    let count = events.len() as u64;

    let root = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ns".into())),
        (
            "otherData",
            obj(vec![
                ("scenario", Value::Str(scenario.to_owned())),
                ("seed", Value::UInt(seed)),
                ("machine", Value::Str(kernel.machine().name.to_owned())),
                ("span_dropped", Value::UInt(kernel.spans().ring().dropped())),
            ]),
        ),
    ]);
    let text = serde_json::to_string(&root).expect("JSON serialization is infallible");
    w.write_all(text.as_bytes())?;
    w.write_all(b"\n")?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tocttou_workloads::scenario::Scenario;

    fn armed_round(seed: u64) -> (Scenario, tocttou_workloads::scenario::RoundHandles) {
        let mut s = Scenario::vi_smp(1);
        s.machine = s.machine.clone().with_spans();
        let (_, mut h) = s.run_traced(seed);
        h.kernel.forensics_mut().flush();
        (s, h)
    }

    #[test]
    fn export_is_valid_trace_event_json() {
        let (s, h) = armed_round(0xE59);
        let mut buf = Vec::new();
        let n = export_perfetto(&mut buf, &s.name, 0xE59, &h.kernel, &[(h.victim, "vi")]).unwrap();
        let root: Value = serde_json::from_str(&String::from_utf8(buf).unwrap()).unwrap();
        let events = match root.get("traceEvents") {
            Some(Value::Array(a)) => a,
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        assert_eq!(events.len() as u64, n);
        for e in events {
            let Some(Value::Str(ph)) = e.get("ph") else {
                panic!("ph present on every event");
            };
            assert!(e.get("pid").is_some(), "pid present");
            assert!(matches!(ph.as_str(), "X" | "i" | "M"), "known phase {ph}");
            if ph != "M" {
                assert!(e.get("ts").is_some(), "timed events carry ts");
                assert!(e.get("tid").is_some());
                assert!(e.get("name").is_some());
            }
            if ph == "X" {
                assert!(e.get("dur").is_some(), "complete events carry dur");
            }
        }
    }

    #[test]
    fn tracks_cover_cpus_sems_and_windows() {
        let (s, h) = armed_round(0xE59);
        let mut buf = Vec::new();
        export_perfetto(&mut buf, &s.name, 0xE59, &h.kernel, &[(h.victim, "vi")]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"cpu0\""), "per-CPU threads named");
        assert!(text.contains("\"semaphores\""));
        assert!(text.contains("window "), "window bars exported");
        assert!(text.contains("\"vi\""), "victim labeled on CPU tracks");
    }

    #[test]
    fn timestamps_are_monotone_per_track() {
        let (s, h) = armed_round(77);
        let mut buf = Vec::new();
        export_perfetto(&mut buf, &s.name, 77, &h.kernel, &[]).unwrap();
        let root: Value = serde_json::from_str(&String::from_utf8(buf).unwrap()).unwrap();
        let Some(Value::Array(events)) = root.get("traceEvents") else {
            panic!("traceEvents array");
        };
        let mut last: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
        for e in events {
            let (Some(pid), Some(tid)) = (
                e.get("pid").and_then(|v| v.as_u64()),
                e.get("tid").and_then(|v| v.as_u64()),
            ) else {
                continue;
            };
            let Some(Value::Float(ts)) = e.get("ts") else {
                continue;
            };
            let prev = last.insert((pid, tid), *ts);
            assert!(
                prev.unwrap_or(f64::NEG_INFINITY) <= *ts,
                "ts monotone per track"
            );
        }
    }

    #[test]
    fn spans_off_round_still_exports_cpu_tracks() {
        // Without spans the sem/forensics tracks are empty but the CPU
        // reconstruction (pure trace) still works and the JSON is valid.
        let s = Scenario::vi_smp(1);
        let (_, h) = s.run_traced(5);
        let mut buf = Vec::new();
        let n = export_perfetto(&mut buf, &s.name, 5, &h.kernel, &[]).unwrap();
        assert!(n > 3, "metadata plus CPU bars");
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.contains("hold "), "no sem spans without --spans");
    }
}
