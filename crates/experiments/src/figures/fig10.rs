//! Figure 10: event timeline of a **successful** gedit attack (program v2)
//! on the multi-core.
//!
//! The paper's analysis: with the page-fault removed, the attacker's
//! stat→unlink gap shrinks to ~2 µs; its `stat` starts well inside the
//! rename (t1 ≈ 27 µs in) and is *lengthened* by contention (26 µs instead
//! of the typical 4 µs), yet still identifies the window at the first
//! possible moment and wins the semaphore race by a couple of microseconds.

use crate::extract::{observe, WindowKind};
use crate::timeline::Timeline;
use serde::Serialize;
use tocttou_sim::time::{SimDuration, SimTime};
use tocttou_workloads::scenario::Scenario;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// First seed to try.
    pub seed: u64,
    /// Maximum seeds to search for a successful round.
    pub max_tries: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 10_0001,
            max_tries: 100,
        }
    }
}

/// The reproduced figure.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Seed of the rendered round.
    pub seed: u64,
    /// Whether the round succeeded (expected: true).
    pub success: bool,
    /// Duration of the detecting `stat`, µs (paper: ~26, inflated from 4).
    pub detecting_stat_us: Option<f64>,
    /// The attacker's stat-start → unlink-start interval, µs (paper: ~28,
    /// dominated by the inflated stat; the post-stat gap is ~2).
    pub stat_to_unlink_us: Option<f64>,
    /// Offset of the detecting stat's start into the rename, µs (paper: 27).
    pub t1_into_rename_us: Option<f64>,
    /// The rendered ASCII timeline.
    pub timeline: String,
    /// The same timeline as an SVG document.
    pub timeline_svg: String,
}

const TITLE: &str = "Figure 10 — successful gedit attack (v2) on the multi-core";

/// Runs the Figure 10 reproduction: finds a successful v2 round and renders
/// its timeline.
pub fn run(cfg: &Config) -> Output {
    let scenario = Scenario::gedit_multicore_v2(2048);
    let mut fallback: Option<Output> = None;
    for i in 0..cfg.max_tries {
        let seed = cfg.seed + i;
        let (result, handles) = scenario.run_traced(seed);
        let Some(obs) = observe(
            handles.kernel.trace(),
            handles.victim,
            handles.attackers[0],
            WindowKind::GeditRename,
            &scenario.layout.doc,
        ) else {
            continue;
        };
        let out = render(&scenario, seed, result.success, &handles, &obs);
        if result.success {
            return out;
        }
        fallback.get_or_insert(out);
    }
    fallback.expect("at least one round must open the window")
}

fn render(
    scenario: &Scenario,
    seed: u64,
    success: bool,
    handles: &tocttou_workloads::scenario::RoundHandles,
    obs: &crate::extract::AttackObservation,
) -> Output {
    use tocttou_os::event::OsEvent;
    use tocttou_os::process::SyscallName;

    let trace = handles.kernel.trace();
    let origin = SimTime::from_nanos(
        obs.visible_at
            .as_nanos()
            .saturating_sub(SimDuration::from_micros(70).as_nanos()),
    );
    let end = obs.t3 + SimDuration::from_micros(100);
    let tl = Timeline::from_trace(
        trace,
        &[
            (handles.victim, "gedit"),
            (handles.attackers[0], "attacker"),
        ],
        origin,
        end,
    );

    // The detecting stat's duration and the rename's start.
    let mut detecting_stat_us = None;
    let mut rename_enter = None;
    let mut unlink_enter = None;
    if let Some(t1) = obs.t1 {
        let mut in_detecting_stat = false;
        for r in trace.iter() {
            match &r.event {
                OsEvent::SyscallEnter {
                    pid,
                    call: SyscallName::Rename,
                    path: Some(p),
                } if *pid == handles.victim && p == &scenario.layout.doc => {
                    rename_enter = Some(r.at);
                }
                OsEvent::SyscallEnter {
                    pid,
                    call: SyscallName::Stat,
                    ..
                } if *pid == handles.attackers[0] && r.at == t1 => {
                    in_detecting_stat = true;
                }
                OsEvent::SyscallExit {
                    pid,
                    call: SyscallName::Stat,
                    ..
                } if *pid == handles.attackers[0] && in_detecting_stat => {
                    detecting_stat_us = Some((r.at - t1).as_micros_f64());
                    in_detecting_stat = false;
                }
                OsEvent::SyscallEnter {
                    pid,
                    call: SyscallName::Unlink,
                    path: Some(p),
                } if *pid == handles.attackers[0]
                    && p == &scenario.layout.doc
                    && r.at >= t1
                    && unlink_enter.is_none() =>
                {
                    unlink_enter = Some(r.at);
                }
                _ => {}
            }
        }
    }
    let stat_to_unlink_us = match (obs.t1, unlink_enter) {
        (Some(t1), Some(u)) => Some((u - t1).as_micros_f64()),
        _ => None,
    };
    let t1_into_rename_us = match (obs.t1, rename_enter) {
        (Some(t1), Some(re)) if t1 >= re => Some((t1 - re).as_micros_f64()),
        _ => None,
    };
    Output {
        seed,
        success,
        detecting_stat_us,
        stat_to_unlink_us,
        t1_into_rename_us,
        timeline: tl.render_ascii(110),
        timeline_svg: crate::svg::span_chart(
            &crate::svg::ChartConfig {
                title: TITLE.into(),
                x_label: "time (µs, from chart origin)".into(),
                ..crate::svg::ChartConfig::default()
            },
            &tl.bar_rows(),
        ),
    }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 10 — successful gedit attack (program v2) on the multi-core (seed {})",
            self.seed
        )?;
        writeln!(
            f,
            "detecting stat: {} µs (paper: ~26, inflated);  stat→unlink: {} µs;  t1 into rename: {} µs (paper: 27)",
            self.detecting_stat_us.map_or("n/a".into(), |v| format!("{v:.1}")),
            self.stat_to_unlink_us.map_or("n/a".into(), |v| format!("{v:.1}")),
            self.t1_into_rename_us.map_or("n/a".into(), |v| format!("{v:.1}")),
        )?;
        writeln!(
            f,
            "attack outcome: {}",
            if self.success { "SUCCESS" } else { "FAILURE" }
        )?;
        write!(f, "{}", self.timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_successful_round_with_inflated_stat() {
        let out = run(&Config {
            seed: 50,
            max_tries: 100,
        });
        assert!(out.success, "v2 succeeds within the search budget");
        let stat = out.detecting_stat_us.expect("detecting stat measured");
        assert!(stat > 15.0, "stat inflated by contention: {stat} µs");
        let t1 = out.t1_into_rename_us.expect("t1 inside rename");
        assert!(t1 > 0.0 && t1 < 55.0, "t1 {t1} µs into rename");
        assert!(out.timeline.contains("attacker"));
    }
}
