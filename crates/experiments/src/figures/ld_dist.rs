//! L and D distributions — the data behind Tables 1 and 2's mean ± stdev.
//!
//! The paper reduces each experiment's L and D to two numbers; this exhibit
//! keeps the whole per-round distribution, binned into histograms, which
//! makes the *regimes* visible at a glance: vi's L mass sits entirely above
//! D (certain success), gedit's L mass straddles the `L = D` boundary from
//! below (the contended 35 %-predicted regime).

use crate::extract::{observe, WindowKind};
use crate::monte_carlo::window_kind_of;
use serde::Serialize;
use tocttou_core::stats::Histogram;
use tocttou_workloads::scenario::Scenario;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Traced rounds per scenario.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
    /// Histogram bins.
    pub bins: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            rounds: 200,
            seed: 16_0001,
            bins: 20,
        }
    }
}

/// One scenario's distributions.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioDist {
    /// Scenario name.
    pub scenario: String,
    /// Histogram of per-round L, µs.
    pub l: Histogram,
    /// Histogram of per-round D, µs.
    pub d: Histogram,
    /// Rounds in which the attacker detected (samples behind the
    /// histograms).
    pub detected: u64,
}

/// The exhibit output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Distributions for the Table 1 and Table 2 scenarios.
    pub scenarios: Vec<ScenarioDist>,
}

fn collect(scenario: &Scenario, cfg: &Config, lo: f64, hi: f64) -> ScenarioDist {
    let kind = window_kind_of(scenario);
    let mut l = Histogram::new(lo, hi, cfg.bins);
    let mut d = Histogram::new(0.0, 60.0, cfg.bins);
    let mut detected = 0;
    for i in 0..cfg.rounds {
        let (_, handles) = scenario.run_traced(cfg.seed + i);
        let Some(obs) = observe(
            handles.kernel.trace(),
            handles.victim,
            handles.attackers[0],
            kind,
            &scenario.layout.doc,
        ) else {
            continue;
        };
        if let Some(sample) = obs.ld_sample() {
            detected += 1;
            l.push(sample.l_us);
            d.push(sample.d_us);
        }
    }
    ScenarioDist {
        scenario: scenario.name.clone(),
        l,
        d,
        detected,
    }
}

/// Runs the exhibit over the Table 1 (vi SMP 1-byte) and Table 2 (gedit
/// SMP) scenarios.
pub fn run(cfg: &Config) -> Output {
    let _ = WindowKind::ViCreat; // re-exported for doc visibility
    Output {
        scenarios: vec![
            collect(&Scenario::vi_smp(1), cfg, 0.0, 100.0),
            collect(&Scenario::gedit_smp(2048), cfg, -40.0, 60.0),
        ],
    }
}

fn render_hist(f: &mut std::fmt::Formatter<'_>, name: &str, h: &Histogram) -> std::fmt::Result {
    let max = h.bins().iter().copied().max().unwrap_or(1).max(1);
    writeln!(f, "  {name}:")?;
    for (i, &count) in h.bins().iter().enumerate() {
        if count == 0 {
            continue;
        }
        let (lo, hi) = h.bin_edges(i);
        let bar = "#".repeat((count * 40 / max).max(1) as usize);
        writeln!(f, "   [{lo:>7.1}, {hi:>7.1}) {count:>5} {bar}")?;
    }
    if h.underflow() + h.overflow() > 0 {
        writeln!(
            f,
            "   (out of range: {} below, {} above)",
            h.underflow(),
            h.overflow()
        )?;
    }
    Ok(())
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "L/D distributions (per-round, µs)")?;
        for s in &self.scenarios {
            writeln!(f, "{} — {} detecting rounds", s.scenario, s.detected)?;
            render_hist(f, "L", &s.l)?;
            render_hist(f, "D", &s.d)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_show_the_two_regimes() {
        let out = run(&Config {
            rounds: 60,
            seed: 4,
            bins: 20,
        });
        assert_eq!(out.scenarios.len(), 2);
        let vi = &out.scenarios[0];
        let gedit = &out.scenarios[1];
        assert!(vi.detected > 50, "vi detects almost every round");
        assert!(gedit.detected > 30, "gedit detects most rounds");

        // vi's L mass is concentrated around 62 µs: the modal bin of the
        // [0, 100) histogram sits in the 55–70 range.
        let (mode_idx, _) =
            vi.l.bins()
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .unwrap();
        let (lo, hi) = vi.l.bin_edges(mode_idx);
        assert!(lo >= 50.0 && hi <= 75.0, "vi L mode in [{lo}, {hi})");

        // gedit's L mass straddles lower values (Table 2's 12 µs), below
        // its D mass (~33 µs): the L mean must be under the D mean.
        let l_mean = hist_mean(&gedit.l);
        let d_mean = hist_mean(&gedit.d);
        assert!(l_mean < d_mean, "gedit L {l_mean} < D {d_mean}");
        let text = out.to_string();
        assert!(text.contains('#'), "bars rendered");
    }

    fn hist_mean(h: &Histogram) -> f64 {
        let mut total = 0.0;
        let mut count = 0.0;
        for (i, &c) in h.bins().iter().enumerate() {
            let (lo, hi) = h.bin_edges(i);
            total += (lo + hi) / 2.0 * c as f64;
            count += c as f64;
        }
        if count == 0.0 {
            0.0
        } else {
            total / count
        }
    }
}
