//! Taxonomy scorecard: the DSL workload library scored per `<check, use>`
//! pair.
//!
//! The `pair_sweep` exhibit asks *which* taxonomy pairs are attackable at
//! all; this one asks how well the passive detector does against realistic
//! victims spanning those pairs. Every scenario in
//! `tocttou_workloads::dsl::library` is a compiled [`ScenarioSpec`] tagged
//! with its expected pair, so the scorecard reports ground-truth success
//! rate, detector precision and recall per pair — the per-pair companion
//! to the `detect` exhibit's per-program view.
//!
//! [`ScenarioSpec`]: tocttou_workloads::ScenarioSpec

use crate::monte_carlo::{run_mc, McConfig};
use serde::Serialize;
use tocttou_workloads::dsl::library::taxonomy_library;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rounds per scenario.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for each Monte-Carlo batch (`1` = serial,
    /// `0` = auto); results are identical for every value.
    pub jobs: usize,
    /// Run every round from a cold boot instead of the warm checkpoint.
    pub cold: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            rounds: 80,
            seed: 0x7AC50,
            jobs: 1,
            cold: false,
        }
    }
}

/// One library scenario's scorecard row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// The `<check, use>` pair the scenario exercises.
    pub pair: String,
    /// Scenario name.
    pub scenario: String,
    /// Ground-truth attack success rate.
    pub rate: f64,
    /// Rounds the detector flagged.
    pub flagged_rounds: u64,
    /// TP / (TP + FP), `None` when nothing was flagged.
    pub precision: Option<f64>,
    /// TP / (TP + FN), `None` when nothing succeeded.
    pub recall: Option<f64>,
}

/// The taxonomy scorecard.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Per-scenario rows, in library order.
    pub rows: Vec<Row>,
    /// Number of distinct `<check, use>` pairs the library covers.
    pub distinct_pairs: usize,
}

/// Runs the scorecard over the whole DSL library.
pub fn run(cfg: &Config) -> Output {
    let mut rows = Vec::new();
    let mut pairs = std::collections::BTreeSet::new();
    for (pair, scenario) in taxonomy_library(None) {
        let out = run_mc(
            &scenario,
            &McConfig {
                rounds: cfg.rounds,
                base_seed: cfg.seed,
                collect_ld: false,
                jobs: cfg.jobs,
                cold: cfg.cold,
            },
        );
        pairs.insert(format!("{pair}"));
        rows.push(Row {
            pair: format!("{pair}"),
            scenario: out.scenario.clone(),
            rate: out.rate,
            flagged_rounds: out.flagged_rounds,
            precision: out.detector_precision,
            recall: out.detector_recall,
        });
    }
    Output {
        rows,
        distinct_pairs: pairs.len(),
    }
}

fn opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:.1}", v * 100.0),
        None => "—".to_string(),
    }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Taxonomy scorecard — DSL workload library, {} scenarios over {} distinct pairs",
            self.rows.len(),
            self.distinct_pairs
        )?;
        writeln!(
            f,
            "{:>16} {:>22} {:>7} {:>8} {:>10} {:>8}",
            "pair", "scenario", "rate", "flagged", "precision", "recall"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>16} {:>22} {:>6.1}% {:>8} {:>9}% {:>7}%",
                r.pair,
                r.scenario,
                r.rate * 100.0,
                r.flagged_rounds,
                opt(r.precision),
                opt(r.recall),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scorecard_covers_the_library() {
        let out = run(&Config {
            rounds: 12,
            seed: 11,
            jobs: 1,
            cold: false,
        });
        assert_eq!(out.rows.len(), 10);
        assert!(
            out.distinct_pairs >= 8,
            "library must span at least 8 pairs, got {}",
            out.distinct_pairs
        );
        assert!(
            out.rows.iter().any(|r| r.rate > 0.0),
            "at least one scenario must succeed at 12 rounds"
        );
        let text = out.to_string();
        assert!(text.contains("distinct pairs"), "{text}");
    }
}
