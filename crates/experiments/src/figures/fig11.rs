//! Figure 11: the effect of parallelizing the attack program (Section 7).
//!
//! For three file sizes (20/100/500 KB) the paper compares the sequential
//! attacker (stat → unlink → symlink) against the pipelined two-thread
//! attacker, whose `symlink` starts as soon as the inode is detached and
//! finishes **well before the end of `unlink`** — the main part of unlink
//! being the physical truncation of the file.
//!
//! The harness isolates the attack steps: the target file already exists,
//! root-owned and fully sized (the window is open), and the attacker's
//! syscall spans are read from the trace.

use serde::Serialize;
use std::cell::Cell;
use std::rc::Rc;
use tocttou_os::event::OsEvent;
use tocttou_os::ids::{Gid, Pid, Uid};
use tocttou_os::kernel::Kernel;
use tocttou_os::machine::MachineSpec;
use tocttou_os::process::SyscallName;
use tocttou_os::vfs::InodeMeta;
use tocttou_sim::time::{SimDuration, SimTime};
use tocttou_workloads::attacker::{
    AttackFlag, AttackerConfig, AttackerV1, PipelinedDetector, PipelinedLinker,
};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// File sizes (KB) — the paper uses 20, 100 and 500.
    pub sizes_kb: Vec<u64>,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sizes_kb: vec![20, 100, 500],
            seed: 11_0001,
        }
    }
}

/// One syscall's measured span, µs relative to the attack's first stat.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CallSpan {
    /// Start offset, µs.
    pub start_us: f64,
    /// End offset, µs.
    pub end_us: f64,
}

/// One bar group of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// File size, KB.
    pub size_kb: u64,
    /// Variant: "sequential" or "parallel".
    pub variant: &'static str,
    /// The detecting `stat`.
    pub stat: CallSpan,
    /// The `unlink`.
    pub unlink: CallSpan,
    /// The `symlink`.
    pub symlink: CallSpan,
}

impl Row {
    /// When the attack is complete (symlink committed), µs.
    pub fn attack_end_us(&self) -> f64 {
        self.symlink.end_us
    }
}

/// The full figure.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Two rows (sequential, parallel) per size.
    pub rows: Vec<Row>,
}

fn layout(kernel: &mut Kernel, size_kb: u64) {
    let root = InodeMeta {
        uid: Uid::ROOT,
        gid: Gid::ROOT,
        mode: 0o755,
    };
    let user = InodeMeta {
        uid: Uid(1000),
        gid: Gid(1000),
        mode: 0o755,
    };
    let vfs = kernel.vfs_mut();
    vfs.mkdir("/etc", root).unwrap();
    vfs.create_file("/etc/passwd", root).unwrap();
    vfs.mkdir("/home", root).unwrap();
    vfs.mkdir("/home/user", user).unwrap();
    // The window is open: the target exists, root-owned, fully written.
    let ino = vfs
        .create_file(
            "/home/user/doc.txt",
            InodeMeta {
                uid: Uid::ROOT,
                gid: Gid::ROOT,
                mode: 0o644,
            },
        )
        .unwrap();
    vfs.append(ino, size_kb * 1024).unwrap();
}

fn spans_for(kernel: &Kernel, pids: &[Pid]) -> Option<(CallSpan, CallSpan, CallSpan)> {
    // Offsets are relative to the *detecting* (last) stat's start.
    let mut stat: Option<(SimTime, SimTime)> = None;
    let mut unlink: Option<(SimTime, SimTime)> = None;
    let mut symlink: Option<(SimTime, SimTime)> = None;
    let mut open_enter: std::collections::HashMap<Pid, (SyscallName, SimTime)> =
        std::collections::HashMap::new();
    for r in kernel.trace().iter() {
        let Some(pid) = r.event.pid() else { continue };
        if !pids.contains(&pid) {
            continue;
        }
        match &r.event {
            OsEvent::SyscallEnter { call, .. } => {
                open_enter.insert(pid, (*call, r.at));
            }
            OsEvent::SyscallExit { call, ok, .. } => {
                if let Some((c, s)) = open_enter.remove(&pid) {
                    if c == *call {
                        match call {
                            SyscallName::Stat if unlink.is_none() => stat = Some((s, r.at)),
                            SyscallName::Unlink if *ok && unlink.is_none() => {
                                unlink = Some((s, r.at))
                            }
                            SyscallName::Symlink if *ok && symlink.is_none() => {
                                symlink = Some((s, r.at))
                            }
                            _ => {}
                        }
                    }
                }
            }
            _ => {}
        }
    }
    let (stat, unlink, symlink) = (stat?, unlink?, symlink?);
    let origin = stat.0;
    let rel = |t: SimTime| (t.as_nanos() as f64 - origin.as_nanos() as f64) / 1_000.0;
    Some((
        CallSpan {
            start_us: rel(stat.0),
            end_us: rel(stat.1),
        },
        CallSpan {
            start_us: rel(unlink.0),
            end_us: rel(unlink.1),
        },
        CallSpan {
            start_us: rel(symlink.0),
            end_us: rel(symlink.1),
        },
    ))
}

/// Runs the Figure 11 reproduction.
pub fn run(cfg: &Config) -> Output {
    let mut rows = Vec::new();
    for &size_kb in &cfg.sizes_kb {
        let attack_cfg = AttackerConfig::gedit_multicore_v2("/home/user/doc.txt", "/etc/passwd");

        // Sequential.
        let mut kernel = Kernel::new(MachineSpec::multicore_pentium_d().quiet(), cfg.seed);
        layout(&mut kernel, size_kb);
        let pid = kernel.spawn(
            "sequential",
            Uid(1000),
            Gid(1000),
            true, // isolate the pipelining effect: warm pages in both variants
            Box::new(AttackerV1::new(attack_cfg.clone(), cfg.seed)),
        );
        kernel.run_until_exit(pid, SimTime::from_millis(100));
        let (stat, unlink, symlink) =
            spans_for(&kernel, &[pid]).expect("sequential attack completed");
        rows.push(Row {
            size_kb,
            variant: "sequential",
            stat,
            unlink,
            symlink,
        });

        // Parallel (pipelined).
        let mut kernel = Kernel::new(MachineSpec::multicore_pentium_d().quiet(), cfg.seed);
        layout(&mut kernel, size_kb);
        let flag: AttackFlag = Rc::new(Cell::new(false));
        let t1 = kernel.spawn(
            "detect",
            Uid(1000),
            Gid(1000),
            true,
            Box::new(PipelinedDetector::new(
                attack_cfg.clone(),
                flag.clone(),
                cfg.seed,
            )),
        );
        let t2 = kernel.spawn(
            "link",
            Uid(1000),
            Gid(1000),
            true,
            Box::new(PipelinedLinker::new(
                attack_cfg,
                flag,
                SimDuration::from_micros(1),
            )),
        );
        kernel.run_until_all_exit(&[t1, t2], SimTime::from_millis(100));
        let (stat, unlink, symlink) =
            spans_for(&kernel, &[t1, t2]).expect("parallel attack completed");
        rows.push(Row {
            size_kb,
            variant: "parallel",
            stat,
            unlink,
            symlink,
        });
    }
    Output { rows }
}

impl Output {
    /// The speed-up in attack completion for a given size (sequential end /
    /// parallel end).
    pub fn speedup(&self, size_kb: u64) -> Option<f64> {
        let seq = self
            .rows
            .iter()
            .find(|r| r.size_kb == size_kb && r.variant == "sequential")?;
        let par = self
            .rows
            .iter()
            .find(|r| r.size_kb == size_kb && r.variant == "parallel")?;
        Some(seq.attack_end_us() / par.attack_end_us())
    }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 11 — pipelined vs sequential attack (paper: parallel symlink finishes well before unlink ends)"
        )?;
        writeln!(
            f,
            "{:>8} {:>12} {:>16} {:>18} {:>18} {:>12}",
            "size KB", "variant", "stat (µs)", "unlink (µs)", "symlink (µs)", "attack end"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>12} {:>7.1}–{:<8.1} {:>8.1}–{:<9.1} {:>8.1}–{:<9.1} {:>10.1}",
                r.size_kb,
                r.variant,
                r.stat.start_us,
                r.stat.end_us,
                r.unlink.start_us,
                r.unlink.end_us,
                r.symlink.start_us,
                r.symlink.end_us,
                r.attack_end_us()
            )?;
        }
        for size in self
            .rows
            .iter()
            .map(|r| r.size_kb)
            .collect::<std::collections::BTreeSet<_>>()
        {
            if let Some(s) = self.speedup(size) {
                writeln!(
                    f,
                    "{size} KB: attack completes {s:.1}× sooner when pipelined"
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_symlink_finishes_before_unlink_ends() {
        let out = run(&Config {
            sizes_kb: vec![20, 500],
            seed: 7,
        });
        assert_eq!(out.rows.len(), 4);
        for r in &out.rows {
            match r.variant {
                "sequential" => assert!(
                    r.symlink.start_us >= r.unlink.end_us,
                    "sequential symlink waits for unlink: {r:?}"
                ),
                "parallel" => assert!(
                    r.symlink.end_us < r.unlink.end_us,
                    "parallel symlink inside unlink: {r:?}"
                ),
                _ => unreachable!(),
            }
        }
        // The advantage grows with file size (longer truncation tail).
        let s20 = out.speedup(20).unwrap();
        let s500 = out.speedup(500).unwrap();
        assert!(s500 > s20, "speedup grows: {s20} → {s500}");
        assert!(s500 > 2.0, "500 KB speedup substantial: {s500}");
    }
}
