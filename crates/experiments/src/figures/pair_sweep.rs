//! Taxonomy sweep: every expressible `<check, use>` pair attacked on the
//! SMP profile.
//!
//! The paper argues (Section 2.3) that vi and gedit are just two of "many
//! kinds of TOCTTOU vulnerabilities (e.g., 224 for Linux)" and that some
//! are much easier to attack. This exhibit generalizes the experiment: for
//! each runnable pair, a [`GenericVictim`] performs check → window → use as
//! root while the standard attacker races it, and the sweep reports which
//! pairs let the attacker redirect the use call.
//!
//! A pair counts as *compromised* when the attack's symlink diverts the use
//! to the privileged file (ownership/mode change of `/etc/passwd`) or the
//! use call demonstrably operated on the attacker-planted link.

use serde::Serialize;
use tocttou_core::taxonomy::{FsCall, TocttouPair};
use tocttou_os::ids::{Gid, Uid};
use tocttou_os::kernel::Kernel;
use tocttou_os::machine::MachineSpec;
use tocttou_os::vfs::InodeMeta;
use tocttou_sim::time::SimTime;
use tocttou_workloads::attacker::{AttackerConfig, AttackerV1};
use tocttou_workloads::generic::{GenericConfig, GenericVictim};

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Window length between check and use, µs.
    pub window_us: f64,
    /// Rounds per pair.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            window_us: 500.0,
            rounds: 5,
            seed: 14_0001,
        }
    }
}

/// One pair's sweep result.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// The check call's name.
    pub check: String,
    /// The use call's name.
    pub use_call: String,
    /// Rounds in which the privileged file changed owner or mode.
    pub privileged_compromised: u64,
    /// Rounds in which the attacker's symlink survived under the name at
    /// use time (the use operated through it or on it).
    pub link_planted: u64,
    /// Rounds run.
    pub rounds: u64,
}

/// The sweep output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Per-pair rows (only expressible pairs).
    pub rows: Vec<Row>,
    /// Pairs in the taxonomy.
    pub taxonomy_pairs: usize,
    /// Pairs the simulator can express.
    pub runnable_pairs: usize,
}

fn run_pair(pair: TocttouPair, cfg: &Config) -> Row {
    let mut privileged_compromised = 0;
    let mut link_planted = 0;
    for i in 0..cfg.rounds {
        let mut k = Kernel::new(MachineSpec::smp_xeon().quiet(), cfg.seed + i);
        k.disable_trace();
        let root = InodeMeta {
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            mode: 0o755,
        };
        let user = InodeMeta {
            uid: Uid(1000),
            gid: Gid(1000),
            mode: 0o755,
        };
        k.vfs_mut().mkdir("/etc", root).unwrap();
        k.vfs_mut()
            .create_file(
                "/etc/passwd",
                InodeMeta {
                    uid: Uid::ROOT,
                    gid: Gid::ROOT,
                    mode: 0o644,
                },
            )
            .unwrap();
        k.vfs_mut().mkdir("/home", root).unwrap();
        k.vfs_mut().mkdir("/home/user", user).unwrap();
        // Pre-existing auxiliary file for rename-as-check and a target for
        // observation-checks; root-owned so stat-style checks open the
        // attacker's window immediately.
        k.vfs_mut()
            .create_file(
                "/home/user/f.aux",
                InodeMeta {
                    uid: Uid::ROOT,
                    gid: Gid::ROOT,
                    mode: 0o644,
                },
            )
            .unwrap();
        k.vfs_mut()
            .create_file(
                "/home/user/f",
                InodeMeta {
                    uid: Uid::ROOT,
                    gid: Gid::ROOT,
                    mode: 0o644,
                },
            )
            .unwrap();

        let mut gcfg = GenericConfig::new(pair, "/home/user/f", cfg.window_us);
        gcfg.aux_path = "/home/user/f.aux".into();
        let vpid = k.spawn(
            "victim",
            Uid::ROOT,
            Gid::ROOT,
            true,
            Box::new(GenericVictim::new(gcfg, cfg.seed ^ i)),
        );
        let atk = AttackerConfig::vi_smp("/home/user/f", "/etc/passwd");
        k.spawn(
            "attacker",
            Uid(1000),
            Gid(1000),
            false,
            Box::new(AttackerV1::new(atk, cfg.seed ^ (i << 8))),
        );
        k.run_until_exit(vpid, SimTime::from_secs(1));

        let passwd = k.vfs().stat("/etc/passwd").unwrap();
        if passwd.uid != Uid::ROOT || passwd.mode != 0o644 {
            privileged_compromised += 1;
        }
        if k.vfs()
            .lstat("/home/user/f")
            .map(|st| st.is_symlink)
            .unwrap_or(false)
        {
            link_planted += 1;
        }
    }
    Row {
        check: pair.check().name().to_string(),
        use_call: pair.use_call().name().to_string(),
        privileged_compromised,
        link_planted,
        rounds: cfg.rounds,
    }
}

/// Runs the sweep over every runnable pair.
pub fn run(cfg: &Config) -> Output {
    let taxonomy = tocttou_core::taxonomy::enumerate_pairs();
    let runnable = GenericVictim::supported_pairs();
    let rows = runnable.iter().map(|&p| run_pair(p, cfg)).collect();
    Output {
        rows,
        taxonomy_pairs: taxonomy.len(),
        runnable_pairs: runnable.len(),
    }
}

impl Output {
    /// Pairs whose use call was diverted to the privileged file in at least
    /// one round.
    pub fn compromised_pairs(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.privileged_compromised > 0)
            .count()
    }

    /// Rows for a specific use call (e.g. everything that chowns).
    pub fn rows_for_use(&self, call: FsCall) -> Vec<&Row> {
        self.rows
            .iter()
            .filter(|r| r.use_call == call.name())
            .collect()
    }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Taxonomy sweep — {} of {} pairs runnable; {} compromised the privileged file",
            self.runnable_pairs,
            self.taxonomy_pairs,
            self.compromised_pairs()
        )?;
        writeln!(
            f,
            "{:>12} {:>12} {:>14} {:>14}",
            "check", "use", "compromised", "link planted"
        )?;
        for r in self.rows.iter().filter(|r| r.privileged_compromised > 0) {
            writeln!(
                f,
                "{:>12} {:>12} {:>11}/{:<2} {:>11}/{:<2}",
                r.check, r.use_call, r.privileged_compromised, r.rounds, r.link_planted, r.rounds
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_finds_the_ownership_and_mode_pairs() {
        let out = run(&Config {
            window_us: 500.0,
            rounds: 2,
            seed: 3,
        });
        assert_eq!(out.taxonomy_pairs, 224);
        assert_eq!(out.runnable_pairs, 132);
        // Every runnable check × chown pair must compromise /etc/passwd.
        for row in out.rows_for_use(FsCall::Chown) {
            assert!(
                row.privileged_compromised > 0,
                "<{},{}> should compromise",
                row.check,
                row.use_call
            );
        }
        // chmod-style uses change the privileged file's mode.
        assert!(out
            .rows_for_use(FsCall::Chmod)
            .iter()
            .any(|r| r.privileged_compromised > 0));
        // Pure namespace uses (mkdir as use) cannot touch the privileged
        // file's metadata.
        for row in out.rows_for_use(FsCall::Mkdir) {
            assert_eq!(row.privileged_compromised, 0, "<{},mkdir>", row.check);
        }
        assert!(out.compromised_pairs() >= 20);
    }
}
