//! One module per table/figure of the paper's evaluation:
//!
//! | module | paper exhibit |
//! |---|---|
//! | [`fig6`] | Figure 6 — vi success vs file size on a uniprocessor |
//! | [`fig7`] | Figure 7 — L and D vs file size for vi on the SMP |
//! | [`table1`] | Table 1 — L/D for 1-byte vi SMP attacks |
//! | [`table2`] | Table 2 — L/D for gedit SMP attacks |
//! | [`fig8`] | Figure 8 — failed gedit v1 timeline on the multi-core |
//! | [`fig10`] | Figure 10 — successful gedit v2 timeline on the multi-core |
//! | [`fig11`] | Figure 11 — pipelined vs sequential attacker |
//! | [`headline`] | the abstract's uniprocessor-vs-multiprocessor summary |
//! | [`defense`] | Section 8 counterfactual: the EDGI guard zeroes every attack |
//! | [`detect`] | passive race detector scored against Monte-Carlo ground truth |
//! | [`profile`] | kernel observability scorecard: sem contention, syscall latency, scheduler counters |
//! | [`pair_sweep`] | the `<check, use>` taxonomy swept against the SMP attacker |
//! | [`taxonomy`] | per-pair detector scorecard over the DSL workload library |
//! | [`maze`] | pathname-maze amplification of the uniprocessor attack |
//! | [`ld_dist`] | per-round L/D distributions behind Tables 1–2 |
//! | [`anatomy`] | race-window anatomy: widths, strike offsets, near misses over the DSL library |

pub mod anatomy;
pub mod defense;
pub mod detect;
pub mod fig10;
pub mod fig11;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod headline;
pub mod ld_dist;
pub mod maze;
pub mod pair_sweep;
pub mod profile;
pub mod table1;
pub mod table2;
pub mod taxonomy;
