//! Detector evaluation: precision/recall against Monte-Carlo ground truth.
//!
//! The kernel's passive race detector (`tocttou-os::detect`) flags a round
//! when a use commits on an interposed check/use window. Ground truth is
//! the Monte-Carlo engine's per-round success verdict (did `/etc/passwd`
//! end up attacker-owned?). This exhibit scores the detector per scenario
//! — precision, recall, mean detection latency — next to the measured
//! laxity `L` and detection cost `D` of the same rounds, so the detector's
//! reaction time can be read against the window it has to react in.

use crate::monte_carlo::{run_mc, McConfig};
use serde::Serialize;
use tocttou_workloads::scenario::Scenario;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rounds per scenario.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for each Monte-Carlo batch (`1` = serial,
    /// `0` = auto); results are identical for every value.
    pub jobs: usize,
    /// Run every round from a cold boot instead of the warm checkpoint
    /// (the byte-identical oracle path; slower, same results).
    pub cold: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            rounds: 120,
            seed: 0xDE7EC7,
            jobs: 1,
            cold: false,
        }
    }
}

/// One scenario's detector scorecard.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Scenario name.
    pub scenario: String,
    /// Ground-truth attack success rate.
    pub rate: f64,
    /// Rounds the detector flagged.
    pub flagged_rounds: u64,
    /// TP / (TP + FP), `None` when nothing was flagged.
    pub precision: Option<f64>,
    /// TP / (TP + FN), `None` when nothing succeeded.
    pub recall: Option<f64>,
    /// Mean detection latency (µs): first event's use commit minus the
    /// interposed mutation.
    pub latency_us: Option<f64>,
    /// Measured mean laxity L (µs).
    pub l_us: Option<f64>,
    /// Measured mean detection cost D (µs).
    pub d_us: Option<f64>,
}

/// The detector scorecard table.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Per-scenario rows.
    pub rows: Vec<Row>,
}

/// Runs the detector evaluation.
pub fn run(cfg: &Config) -> Output {
    let scenarios = [
        Scenario::vi_smp(100 * 1024),
        Scenario::vi_smp(1),
        Scenario::gedit_smp(2048),
        Scenario::gedit_multicore_v2(2048),
    ];
    let mut rows = Vec::new();
    for scenario in scenarios {
        let out = run_mc(
            &scenario,
            &McConfig {
                rounds: cfg.rounds,
                base_seed: cfg.seed,
                collect_ld: true,
                jobs: cfg.jobs,
                cold: cfg.cold,
            },
        );
        rows.push(Row {
            scenario: out.scenario.clone(),
            rate: out.rate,
            flagged_rounds: out.flagged_rounds,
            precision: out.detector_precision,
            recall: out.detector_recall,
            latency_us: out.detection_latency_us,
            l_us: out.l.map(|l| l.mean),
            d_us: out.d.map(|d| d.mean),
        });
    }
    Output { rows }
}

fn opt(v: Option<f64>, scale: f64) -> String {
    match v {
        Some(v) => format!("{:.1}", v * scale),
        None => "—".to_string(),
    }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Detect — passive kernel race detector vs Monte-Carlo ground truth"
        )?;
        writeln!(
            f,
            "{:>28} {:>7} {:>8} {:>10} {:>8} {:>12} {:>8} {:>8}",
            "scenario", "rate", "flagged", "precision", "recall", "latency(µs)", "L(µs)", "D(µs)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>28} {:>6.1}% {:>8} {:>9}% {:>7}% {:>12} {:>8} {:>8}",
                r.scenario,
                r.rate * 100.0,
                r.flagged_rounds,
                opt(r.precision, 100.0),
                opt(r.recall, 100.0),
                opt(r.latency_us, 1.0),
                opt(r.l_us, 1.0),
                opt(r.d_us, 1.0),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_scores_every_scenario() {
        let out = run(&Config {
            rounds: 25,
            seed: 5,
            jobs: 1,
            cold: false,
        });
        assert_eq!(out.rows.len(), 4);
        for r in &out.rows {
            assert!(r.rate > 0.2, "{}: attack must work", r.scenario);
            assert!(r.flagged_rounds > 0, "{}: detector must fire", r.scenario);
            let recall = r.recall.expect("successes exist");
            assert!(
                recall >= 0.99,
                "{}: every success must be detected, recall {recall}",
                r.scenario
            );
            let precision = r.precision.expect("flagged rounds exist");
            assert!(
                precision >= 0.9,
                "{}: precision {precision} below floor",
                r.scenario
            );
            assert!(
                r.latency_us.unwrap() > 0.0,
                "{}: latency must be positive",
                r.scenario
            );
        }
        let text = out.to_string();
        assert!(text.contains("precision"), "{text}");
    }
}
