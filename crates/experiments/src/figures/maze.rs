//! Maze amplification: Section 1's pre-multiprocessor victim-slowing
//! technique, quantified.
//!
//! Before attackers had dedicated CPUs, they *stretched the victim's
//! window*: Borisov et al.'s filesystem mazes make every path resolution of
//! the victim's file slow (the paper cites this as enhancement (2), "using
//! extremely long pathnames"). This exhibit sweeps maze depth on the
//! uniprocessor and shows the suspension probability — and with it the
//! attack success rate — climbing with depth, per the Section 3.2 model.

use serde::Serialize;
use tocttou_core::stats::SuccessCounter;
use tocttou_workloads::maze::{run_maze_round, vi_uniprocessor_maze};

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maze depths to test.
    pub depths: Vec<usize>,
    /// Per-component resolution cost, µs (Borisov's real mazes reached
    /// disk-seek latencies per component; 5 µs models a cold dentry walk).
    pub per_component_us: f64,
    /// File size in bytes (kept small so the maze dominates the window).
    pub file_size: u64,
    /// Rounds per depth.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            depths: vec![0, 100, 200, 400, 800],
            per_component_us: 5.0,
            file_size: 100 * 1024,
            rounds: 150,
            seed: 15_0001,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Maze depth (directory-chain length).
    pub depth: usize,
    /// Observed uniprocessor success rate.
    pub observed: f64,
    /// Wilson 95 % CI.
    pub ci95: (f64, f64),
}

/// The sweep output.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Rows by depth.
    pub rows: Vec<Row>,
}

/// Runs the maze sweep.
pub fn run(cfg: &Config) -> Output {
    let mut rows = Vec::new();
    for &depth in &cfg.depths {
        let scenario = vi_uniprocessor_maze(cfg.file_size, depth, cfg.per_component_us);
        let mut counter = SuccessCounter::new();
        for i in 0..cfg.rounds {
            counter.record(run_maze_round(&scenario, cfg.seed + i).success);
        }
        rows.push(Row {
            depth,
            observed: counter.rate(),
            ci95: counter.wilson_ci95(),
        });
    }
    Output { rows }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Maze amplification — uniprocessor vi attack vs pathname depth (Section 1 enhancement)"
        )?;
        writeln!(f, "{:>8} {:>12} {:>18}", "depth", "observed", "95% CI")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>11.1}% [{:>5.1}%, {:>5.1}%]",
                r.depth,
                r.observed * 100.0,
                r.ci95.0 * 100.0,
                r.ci95.1 * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_mazes_help_the_uniprocessor_attacker() {
        let out = run(&Config {
            depths: vec![0, 800],
            per_component_us: 5.0,
            file_size: 100 * 1024,
            rounds: 80,
            seed: 9,
        });
        assert_eq!(out.rows.len(), 2);
        let flat = &out.rows[0];
        let deep = &out.rows[1];
        assert!(
            deep.observed > flat.observed + 0.03,
            "flat {:.3} vs deep {:.3}",
            flat.observed,
            deep.observed
        );
    }
}
