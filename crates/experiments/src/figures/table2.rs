//! Table 2: L and D values for gedit attacks on the SMP.
//!
//! The paper reports L = 11.6 ± 3.89 µs and D = 32.7 ± 2.83 µs, a formula
//! (1) prediction of ~35 %, and an **observed** success rate of ~83 % —
//! deliberately inconsistent, because the t1 estimator ("earliest observed
//! start time of stat which indicates a vulnerability window") is
//! conservative and under-estimates L. Reproducing that estimator bias is
//! part of reproducing the table: our measured-L prediction should likewise
//! sit well below the observed rate.

use crate::monte_carlo::{run_mc, McConfig};
use serde::Serialize;
use tocttou_core::model::MeasuredUs;
use tocttou_workloads::scenario::Scenario;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Traced rounds.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
    /// File size in bytes (the window is size-independent for gedit).
    pub file_size: u64,
    /// Worker threads for each Monte-Carlo batch (`1` = serial,
    /// `0` = auto); results are identical for every value.
    pub jobs: usize,
    /// Run every round from a cold boot instead of the warm checkpoint
    /// (the byte-identical oracle path; slower, same results).
    pub cold: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            rounds: 200,
            seed: 2_0001,
            file_size: 2048,
            jobs: 1,
            cold: false,
        }
    }
}

/// The reproduced table.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Measured L (paper: 11.6 ± 3.89 µs).
    pub l: MeasuredUs,
    /// Measured D (paper: 32.7 ± 2.83 µs).
    pub d: MeasuredUs,
    /// Formula (1) prediction from the measured means (paper: ~35 %).
    pub predicted: f64,
    /// Observed success rate (paper: ~83 %).
    pub observed: f64,
    /// Wilson 95 % CI of the observed rate.
    pub ci95: (f64, f64),
    /// Rounds run / rounds in which the attacker detected the window.
    pub rounds: u64,
    /// Detection rounds backing the L/D estimates.
    pub detected_rounds: u64,
}

/// Runs the Table 2 reproduction.
pub fn run(cfg: &Config) -> Output {
    let scenario = Scenario::gedit_smp(cfg.file_size);
    let mc = run_mc(
        &scenario,
        &McConfig {
            rounds: cfg.rounds,
            base_seed: cfg.seed,
            collect_ld: true,
            jobs: cfg.jobs,
            cold: cfg.cold,
        },
    );
    let l = mc.l.expect("gedit SMP rounds mostly detect");
    let d = mc.d.expect("gedit SMP rounds measure D");
    Output {
        l,
        d,
        predicted: mc.predicted_rate_ld.unwrap_or(0.0),
        observed: mc.rate,
        ci95: mc.rate_ci95,
        rounds: mc.rounds,
        detected_rounds: mc.detected_rounds,
    }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 2 — gedit SMP attack (paper: L = 11.6 ± 3.89, D = 32.7 ± 2.83; predicted ~35% vs observed ~83%)"
        )?;
        writeln!(f, "{:>22} {:>16} {:>10}", "", "Average", "Stdev")?;
        writeln!(
            f,
            "{:>22} {:>16.1} {:>10.2}",
            "L (µs)", self.l.mean, self.l.stdev
        )?;
        writeln!(
            f,
            "{:>22} {:>16.1} {:>10.2}",
            "D (µs)", self.d.mean, self.d.stdev
        )?;
        writeln!(
            f,
            "formula(1) prediction from measured L/D: {:.1}% (conservative t1, as in the paper)",
            self.predicted * 100.0
        )?;
        writeln!(
            f,
            "observed success: {:.1}% [{:.1}%, {:.1}%] over {} rounds ({} detecting)",
            self.observed * 100.0,
            self.ci95.0 * 100.0,
            self.ci95.1 * 100.0,
            self.rounds,
            self.detected_rounds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table2_shape_and_estimator_bias() {
        let out = run(&Config {
            rounds: 80,
            seed: 11,
            file_size: 2048,
            jobs: 1,
            cold: false,
        });
        // D in the paper's ballpark; L small.
        assert!((25.0..45.0).contains(&out.d.mean), "D {}", out.d.mean);
        assert!(
            out.l.mean < out.d.mean,
            "L < D as measured (contended regime)"
        );
        // Observed high (paper ~83 %).
        assert!(out.observed > 0.6, "observed {}", out.observed);
        // The table's headline: the measured-L prediction under-shoots the
        // observed rate because t1 is conservative.
        assert!(
            out.predicted < out.observed - 0.1,
            "prediction {} should undershoot observation {}",
            out.predicted,
            out.observed
        );
        let text = out.to_string();
        assert!(text.contains("Table 2"));
    }
}
