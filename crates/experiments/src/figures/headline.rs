//! The paper's headline comparison (abstract / Sections 5–6): the same
//! attacks on a uniprocessor vs. a multiprocessor.
//!
//! * vi: low single-digit percentage → ~100 % (96 % at 1 byte);
//! * gedit: essentially zero → up to 83 %.

use crate::monte_carlo::{run_mc, McConfig};
use serde::Serialize;
use tocttou_workloads::scenario::Scenario;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rounds per cell.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for each Monte-Carlo batch (`1` = serial,
    /// `0` = auto); results are identical for every value.
    pub jobs: usize,
    /// Run every round from a cold boot instead of the warm checkpoint
    /// (the byte-identical oracle path; slower, same results).
    pub cold: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            rounds: 200,
            seed: 12_0001,
            jobs: 1,
            cold: false,
        }
    }
}

/// One comparison line.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Victim name.
    pub victim: &'static str,
    /// Workload note.
    pub note: &'static str,
    /// Uniprocessor success rate.
    pub uniprocessor: f64,
    /// Multiprocessor success rate.
    pub multiprocessor: f64,
}

/// The headline table.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Comparison rows.
    pub rows: Vec<Row>,
}

/// Runs the headline comparison.
pub fn run(cfg: &Config) -> Output {
    let mc = |s: &Scenario, salt: u64| {
        run_mc(
            s,
            &McConfig {
                rounds: cfg.rounds,
                base_seed: cfg.seed + salt,
                collect_ld: false,
                jobs: cfg.jobs,
                cold: cfg.cold,
            },
        )
        .rate
    };
    let rows = vec![
        Row {
            victim: "vi",
            note: "500 KB file",
            uniprocessor: mc(&Scenario::vi_uniprocessor(500 * 1024), 1),
            multiprocessor: mc(&Scenario::vi_smp(500 * 1024), 2),
        },
        Row {
            victim: "vi",
            note: "1-byte file",
            uniprocessor: mc(&Scenario::vi_uniprocessor(1), 3),
            multiprocessor: mc(&Scenario::vi_smp(1), 4),
        },
        Row {
            victim: "gedit",
            note: "2 KB file",
            uniprocessor: mc(&Scenario::gedit_uniprocessor(2048), 5),
            multiprocessor: mc(&Scenario::gedit_smp(2048), 6),
        },
    ];
    Output { rows }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Headline — multiprocessors reduce dependability (paper: vi low% → ~100%, gedit ~0% → 83%)"
        )?;
        writeln!(
            f,
            "{:>8} {:>14} {:>16} {:>18}",
            "victim", "workload", "uniprocessor", "multiprocessor"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>14} {:>15.1}% {:>17.1}%",
                r.victim,
                r.note,
                r.uniprocessor * 100.0,
                r.multiprocessor * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiprocessor_dominates_everywhere() {
        let out = run(&Config {
            rounds: 40,
            seed: 2,
            jobs: 1,
            cold: false,
        });
        for r in &out.rows {
            assert!(
                r.multiprocessor > r.uniprocessor + 0.3,
                "{} ({}): {} vs {}",
                r.victim,
                r.note,
                r.uniprocessor,
                r.multiprocessor
            );
        }
        let gedit = out.rows.iter().find(|r| r.victim == "gedit").unwrap();
        assert_eq!(gedit.uniprocessor, 0.0, "gedit uniprocessor is zero");
    }
}
