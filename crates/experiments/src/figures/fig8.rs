//! Figure 8: event timeline of a **failed** gedit attack (program v1) on
//! the multi-core.
//!
//! The paper's analysis: the victim's rename→chmod gap is only ~3 µs while
//! the attacker needs ~17 µs (11 µs computation + 6 µs page-fault trap)
//! between `stat` and `unlink`, so `chmod`/`chown` always enqueue first and
//! the attacker's `unlink` ends up *blocked on the semaphore* behind them.

use crate::extract::{observe, WindowKind};
use crate::timeline::Timeline;
use serde::Serialize;
use tocttou_sim::time::{SimDuration, SimTime};
use tocttou_workloads::scenario::Scenario;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Seeds to search for a representative failed round.
    pub seed: u64,
    /// Maximum seeds to try.
    pub max_tries: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 8_0001,
            max_tries: 50,
        }
    }
}

/// The reproduced figure: a rendered timeline plus the paper's key gaps.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Seed of the rendered round.
    pub seed: u64,
    /// Whether the round succeeded (expected: false).
    pub success: bool,
    /// The victim's rename-exit → chmod-enter gap, µs (paper: ~3).
    pub victim_gap_us: Option<f64>,
    /// The attacker's detecting-stat-start → unlink-start interval, µs
    /// (paper: D ≈ 22, including the 6 µs trap).
    pub attacker_stat_to_unlink_us: Option<f64>,
    /// Whether the attacker's unlink blocked on a semaphore (paper: yes).
    pub unlink_blocked: bool,
    /// The rendered ASCII timeline.
    pub timeline: String,
    /// The same timeline as an SVG document.
    pub timeline_svg: String,
}

const TITLE: &str = "Figure 8 — failed gedit attack (v1) on the multi-core";

/// Runs the Figure 8 reproduction: finds a failed v1 round that at least
/// detected the window, and renders its timeline.
pub fn run(cfg: &Config) -> Output {
    let scenario = Scenario::gedit_multicore_v1(2048);
    let mut fallback: Option<Output> = None;
    for i in 0..cfg.max_tries {
        let seed = cfg.seed + i;
        let (result, handles) = scenario.run_traced(seed);
        let obs = observe(
            handles.kernel.trace(),
            handles.victim,
            handles.attackers[0],
            WindowKind::GeditRename,
            &scenario.layout.doc,
        );
        let Some(obs) = obs else { continue };
        let out = render(&scenario, seed, result.success, &handles, &obs);
        if !result.success && obs.t1.is_some() {
            if out.unlink_blocked {
                // The paper's exact shape: the attacker detected, lost the
                // race, and its unlink waited on the semaphore behind the
                // victim's chmod/chown.
                return out;
            }
            // A detected failure without the blocked unlink is still a
            // better fallback than a non-detecting round.
            if fallback
                .as_ref()
                .is_none_or(|f| f.success || f.victim_gap_us.is_none())
            {
                fallback = Some(out);
                continue;
            }
        }
        fallback.get_or_insert(out);
    }
    fallback.expect("at least one round must open the window")
}

fn render(
    scenario: &Scenario,
    seed: u64,
    success: bool,
    handles: &tocttou_workloads::scenario::RoundHandles,
    obs: &crate::extract::AttackObservation,
) -> Output {
    use tocttou_os::event::OsEvent;
    use tocttou_os::process::SyscallName;

    let trace = handles.kernel.trace();
    // Window the chart from shortly before the into-place rename to the
    // attack's settling.
    let origin = SimTime::from_nanos(
        obs.visible_at
            .as_nanos()
            .saturating_sub(SimDuration::from_micros(80).as_nanos()),
    );
    let end = obs.t3 + SimDuration::from_micros(120);
    let tl = Timeline::from_trace(
        trace,
        &[
            (handles.victim, "gedit"),
            (handles.attackers[0], "attacker"),
        ],
        origin,
        end,
    );

    // Victim gap: rename exit → chmod enter.
    let mut rename_exit = None;
    let mut chmod_enter = None;
    let mut unlink_enter = None;
    let mut unlink_blocked = false;
    let mut pending_unlink = false;
    for r in trace.iter() {
        match &r.event {
            OsEvent::SyscallExit {
                pid,
                call: SyscallName::Rename,
                ..
            } if *pid == handles.victim && r.at >= obs.visible_at => {
                rename_exit.get_or_insert(r.at);
            }
            OsEvent::SyscallEnter {
                pid,
                call: SyscallName::Chmod,
                ..
            } if *pid == handles.victim => {
                chmod_enter.get_or_insert(r.at);
            }
            OsEvent::SyscallEnter {
                pid,
                call: SyscallName::Unlink,
                path: Some(p),
            } if *pid == handles.attackers[0] && p == &scenario.layout.doc => {
                unlink_enter.get_or_insert(r.at);
                pending_unlink = true;
            }
            OsEvent::SemEnqueue { pid, .. } if *pid == handles.attackers[0] && pending_unlink => {
                unlink_blocked = true;
            }
            OsEvent::SyscallExit {
                pid,
                call: SyscallName::Unlink,
                ..
            } if *pid == handles.attackers[0] => {
                pending_unlink = false;
            }
            _ => {}
        }
    }
    let victim_gap_us = match (rename_exit, chmod_enter) {
        (Some(a), Some(b)) if b >= a => Some((b - a).as_micros_f64()),
        _ => None,
    };
    let attacker_stat_to_unlink_us = match (obs.t1, unlink_enter) {
        (Some(t1), Some(u)) if u >= t1 => Some((u - t1).as_micros_f64()),
        _ => None,
    };
    Output {
        seed,
        success,
        victim_gap_us,
        attacker_stat_to_unlink_us,
        unlink_blocked,
        timeline: tl.render_ascii(110),
        timeline_svg: crate::svg::span_chart(
            &crate::svg::ChartConfig {
                title: TITLE.into(),
                x_label: "time (µs, from chart origin)".into(),
                ..crate::svg::ChartConfig::default()
            },
            &tl.bar_rows(),
        ),
    }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 8 — failed gedit attack (program v1) on the multi-core (seed {})",
            self.seed
        )?;
        writeln!(
            f,
            "victim rename→chmod gap: {} µs (paper: ~3);  attacker stat→unlink: {} µs (paper: ~17+stat);  unlink blocked on semaphore: {}",
            self.victim_gap_us.map_or("n/a".into(), |v| format!("{v:.1}")),
            self.attacker_stat_to_unlink_us
                .map_or("n/a".into(), |v| format!("{v:.1}")),
            self.unlink_blocked
        )?;
        writeln!(
            f,
            "attack outcome: {}",
            if self.success { "SUCCESS" } else { "FAILURE" }
        )?;
        write!(f, "{}", self.timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_failed_round_with_paper_gaps() {
        let out = run(&Config {
            seed: 4,
            max_tries: 60,
        });
        assert!(!out.success, "v1 on the multi-core fails");
        let vg = out.victim_gap_us.expect("victim gap measured");
        assert!(vg < 8.0, "victim gap {vg} ≈ 3 µs");
        let ag = out
            .attacker_stat_to_unlink_us
            .expect("attacker gap measured");
        assert!(ag > vg, "attacker slower than victim: {ag} vs {vg}");
        assert!(out.timeline.contains("gedit"));
        assert!(out.timeline.contains("attacker"));
    }
}
