//! Race-window anatomy scorecard: window widths, strike offsets and
//! near-miss distributions over the DSL taxonomy library.
//!
//! The other exhibits score attacks by their *outcome*; this one dissects
//! the *mechanism*. For every library scenario the kernel's window
//! forensics (see `tocttou_os::forensics`) measure each realized
//! check-to-use window — the exact virtual-time interval between the
//! victim's check commit and its use commit per `(pid, path)` — and
//! classify every attacker strike against it: a hit lands inside the
//! window, an early miss lands before the (re-)check, a late miss lands
//! after the use. The signed miss distance is Formula (1)'s laxity term
//! made empirical: how much earlier or later the strike would have had to
//! land to flip the round. Rows also carry the DSL trace's *declared*
//! window (the `check_step → use_step` annotation from
//! `CompiledVictim::window_annotation`) so measured anatomy can be read
//! against ground truth.

use crate::monte_carlo::{run_mc, McConfig};
use serde::Serialize;
use tocttou_sim::metrics::LatencyHistogram;
use tocttou_workloads::dsl::library::taxonomy_library;
use tocttou_workloads::scenario::{Scenario, VictimSpec};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rounds per scenario.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for each Monte-Carlo batch (`1` = serial,
    /// `0` = auto); the anatomy is bit-identical for every value.
    pub jobs: usize,
    /// Run every round from a cold boot instead of the warm checkpoint.
    pub cold: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            rounds: 80,
            seed: 0x0A7A_707A, // "anatomy"
            jobs: 1,
            cold: false,
        }
    }
}

/// Quantile summary of one latency histogram, in microseconds.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Samples recorded.
    pub count: u64,
    /// Median upper bound (µs).
    pub p50_us: f64,
    /// 95th-percentile upper bound (µs).
    pub p95_us: f64,
    /// Largest sample (µs).
    pub max_us: f64,
}

fn summarize(h: &LatencyHistogram) -> Summary {
    let us = |ns: u64| ns as f64 / 1_000.0;
    Summary {
        count: h.count(),
        p50_us: us(h.quantile_ns(0.5).unwrap_or(0)),
        p95_us: us(h.quantile_ns(0.95).unwrap_or(0)),
        max_us: us(h.max_ns().unwrap_or(0)),
    }
}

/// The DSL trace's declared window — ground truth the measured windows
/// are read against.
#[derive(Debug, Clone, Serialize)]
pub struct Declared {
    /// Path whose check→use interval the trace races.
    pub path: String,
    /// Trace step of the (last refreshing) check call.
    pub check_step: usize,
    /// Trace step of the first matching use call.
    pub use_step: usize,
}

/// One scenario's anatomy row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// The `<check, use>` pair the scenario exercises.
    pub pair: String,
    /// Scenario name.
    pub scenario: String,
    /// Ground-truth attack success rate.
    pub rate: f64,
    /// The declared window, when the victim is a compiled DSL trace
    /// (hand-written victims have no annotation).
    pub declared: Option<Declared>,
    /// Check commits observed.
    pub checks: u64,
    /// Use commits that closed a window.
    pub uses: u64,
    /// Realized check→use window widths.
    pub width: Summary,
    /// Strikes that landed inside a window.
    pub strikes_hit: u64,
    /// Early-miss distances (strike before the window opened).
    pub early: Summary,
    /// Late-miss distances (strike after the window closed).
    pub late: Summary,
    /// Strikes that never paired with any window of their path.
    pub strikes_unpaired: u64,
    /// The closest miss of the whole batch (µs), `None` when every strike
    /// hit or none was thrown.
    pub closest_miss_us: Option<f64>,
}

/// The anatomy scorecard.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Rounds per scenario.
    pub rounds: u64,
    /// Per-scenario rows, in library order.
    pub rows: Vec<Row>,
}

/// Dissects one scenario: runs the Monte-Carlo batch and condenses its
/// folded [`ForensicsSnapshot`] into a [`Row`]. Exposed so the golden
/// test can pin a single scenario.
///
/// [`ForensicsSnapshot`]: tocttou_os::forensics::ForensicsSnapshot
pub fn anatomy_row(pair: &str, scenario: &Scenario, cfg: &Config) -> Row {
    let out = run_mc(
        scenario,
        &McConfig {
            rounds: cfg.rounds,
            base_seed: cfg.seed,
            collect_ld: false,
            jobs: cfg.jobs,
            cold: cfg.cold,
        },
    );
    let declared = match &scenario.victim {
        VictimSpec::Compiled(c) => c.window_annotation().map(|a| Declared {
            path: a.path.to_string(),
            check_step: a.check_step,
            use_step: a.use_step,
        }),
        _ => None,
    };
    let f = &out.forensics;
    Row {
        pair: pair.to_string(),
        scenario: out.scenario,
        rate: out.rate,
        declared,
        checks: f.checks,
        uses: f.uses,
        width: summarize(&f.window_width),
        strikes_hit: f.strikes_hit,
        early: summarize(&f.miss_early),
        late: summarize(&f.miss_late),
        strikes_unpaired: f.strikes_unpaired,
        closest_miss_us: f.min_miss_ns().map(|ns| ns as f64 / 1_000.0),
    }
}

/// Runs the scorecard over the whole DSL library.
pub fn run(cfg: &Config) -> Output {
    Output {
        rounds: cfg.rounds,
        rows: taxonomy_library(None)
            .into_iter()
            .map(|(pair, scenario)| anatomy_row(&format!("{pair}"), &scenario, cfg))
            .collect(),
    }
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<18} {:<22} rate {:>5.1}%",
            self.pair,
            self.scenario,
            self.rate * 100.0
        )?;
        match &self.declared {
            Some(d) => writeln!(
                f,
                "  declared {} (step {} → {})",
                d.path, d.check_step, d.use_step
            )?,
            None => writeln!(f, "  declared —")?,
        }
        writeln!(
            f,
            "    windows {:>6} (width p50 {:.1}µs p95 {:.1}µs max {:.1}µs)  checks {} uses {}",
            self.width.count,
            self.width.p50_us,
            self.width.p95_us,
            self.width.max_us,
            self.checks,
            self.uses
        )?;
        let miss = match self.closest_miss_us {
            Some(us) => format!("{us:.1}µs"),
            None => "—".to_string(),
        };
        writeln!(
            f,
            "    strikes: {} hit, {} early (p50 {:.1}µs), {} late (p50 {:.1}µs), {} unpaired; closest miss {}",
            self.strikes_hit,
            self.early.count,
            self.early.p50_us,
            self.late.count,
            self.late.p50_us,
            self.strikes_unpaired,
            miss
        )
    }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Race-window anatomy — widths, strike offsets and near misses \
             ({} rounds per scenario)",
            self.rounds
        )?;
        for row in &self.rows {
            write!(f, "{row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dissects_the_whole_library_with_live_forensics() {
        let out = run(&Config {
            rounds: 12,
            seed: 11,
            jobs: 1,
            cold: false,
        });
        assert_eq!(out.rows.len(), 10);
        for r in &out.rows {
            assert!(r.checks > 0, "{}: checks must be observed", r.scenario);
            assert!(
                r.declared.is_some(),
                "{}: every library victim declares its window",
                r.scenario
            );
            let d = r.declared.as_ref().unwrap();
            assert!(
                d.check_step < d.use_step,
                "{}: check before use",
                r.scenario
            );
        }
        assert!(
            out.rows.iter().any(|r| r.width.count > 0),
            "windows must be realized somewhere in the library"
        );
        assert!(
            out.rows
                .iter()
                .any(|r| r.strikes_hit + r.early.count + r.late.count > 0),
            "strikes must be classified somewhere in the library"
        );
        let text = out.to_string();
        assert!(text.contains("Race-window anatomy"), "{text}");
        assert!(text.contains("closest miss"), "{text}");
    }

    #[test]
    fn anatomy_is_independent_of_jobs() {
        let (pair, scenario) = taxonomy_library(None).remove(0);
        let cfg1 = Config {
            rounds: 16,
            seed: 77,
            jobs: 1,
            cold: false,
        };
        let a = anatomy_row(&format!("{pair}"), &scenario, &cfg1);
        let b = anatomy_row(&format!("{pair}"), &scenario, &Config { jobs: 4, ..cfg1 });
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn hand_written_victims_render_without_annotation() {
        let row = anatomy_row(
            "<stat, open>",
            &Scenario::vi_smp(100 * 1024),
            &Config {
                rounds: 8,
                seed: 3,
                jobs: 1,
                cold: false,
            },
        );
        assert!(row.declared.is_none());
        assert!(row.checks > 0 && row.uses > 0);
        assert!(row.to_string().contains("declared —"), "{row}");
    }
}
