//! Table 1: average L and D for vi SMP attacks with 1-byte files.
//!
//! The paper reports L = 61.6 ± 3.78 µs and D = 41.1 ± 2.73 µs and a ~96 %
//! observed success rate — the interesting case where L and D are *close*
//! and environmental variance makes "L > D all the time" questionable
//! (Section 5's discussion). The model columns evaluate formula (1) at the
//! means, its stochastic refinement over the measured variance, and the
//! full Equation 1 with the calibrated interference probability.

use crate::monte_carlo::{run_mc, McConfig};
use serde::Serialize;
use tocttou_core::model::{expected_success_rate, MeasuredUs, MultiprocessorScenario};
use tocttou_workloads::scenario::Scenario;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Traced rounds.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
    /// Interference probability for the Equation 1 column (calibrated from
    /// the background-activity spec; the paper attributes the 4 % shortfall
    /// to "other processes" denying the attacker its CPU).
    pub p_interference: f64,
    /// Worker threads for each Monte-Carlo batch (`1` = serial,
    /// `0` = auto); results are identical for every value.
    pub jobs: usize,
    /// Run every round from a cold boot instead of the warm checkpoint
    /// (the byte-identical oracle path; slower, same results).
    pub cold: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            rounds: 200,
            seed: 1_0001,
            p_interference: 0.04,
            jobs: 1,
            cold: false,
        }
    }
}

/// The reproduced table plus model columns.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Measured L (paper: 61.6 ± 3.78 µs).
    pub l: MeasuredUs,
    /// Measured D (paper: 41.1 ± 2.73 µs).
    pub d: MeasuredUs,
    /// Observed success rate (paper: ~96 %).
    pub observed: f64,
    /// Wilson 95 % CI of the observed rate.
    pub ci95: (f64, f64),
    /// Formula (1) at the means (paper's reading: L > D ⇒ 1.0).
    pub formula1_point: f64,
    /// Formula (1) integrated over the measured variance.
    pub formula1_stochastic: f64,
    /// Equation 1 with the interference term.
    pub equation1: f64,
    /// Rounds run.
    pub rounds: u64,
}

/// Runs the Table 1 reproduction.
pub fn run(cfg: &Config) -> Output {
    let scenario = Scenario::vi_smp(1);
    let mc = run_mc(
        &scenario,
        &McConfig {
            rounds: cfg.rounds,
            base_seed: cfg.seed,
            collect_ld: true,
            jobs: cfg.jobs,
            cold: cfg.cold,
        },
    );
    let l = mc.l.expect("vi SMP rounds always detect");
    let d = mc.d.expect("vi SMP rounds always measure D");
    let formula1_point = tocttou_core::model::success_rate(l.mean, d.mean);
    let formula1_stochastic = expected_success_rate(l, d);
    let equation1 = MultiprocessorScenario {
        l,
        d,
        p_suspended: 0.0,
        p_interference: cfg.p_interference,
    }
    .success_probability()
    .value();
    Output {
        l,
        d,
        observed: mc.rate,
        ci95: mc.rate_ci95,
        formula1_point,
        formula1_stochastic,
        equation1,
        rounds: mc.rounds,
    }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 1 — vi SMP attack, 1-byte file (paper: L = 61.6 ± 3.78, D = 41.1 ± 2.73, ~96%)"
        )?;
        writeln!(f, "{:>22} {:>16} {:>10}", "", "Average", "Stdev")?;
        writeln!(
            f,
            "{:>22} {:>16.1} {:>10.2}",
            "L (µs)", self.l.mean, self.l.stdev
        )?;
        writeln!(
            f,
            "{:>22} {:>16.1} {:>10.2}",
            "D (µs)", self.d.mean, self.d.stdev
        )?;
        writeln!(
            f,
            "observed success: {:.1}% [{:.1}%, {:.1}%] over {} rounds",
            self.observed * 100.0,
            self.ci95.0 * 100.0,
            self.ci95.1 * 100.0,
            self.rounds
        )?;
        writeln!(
            f,
            "model: formula(1) point = {:.1}%, stochastic = {:.1}%, Equation 1 = {:.1}%",
            self.formula1_point * 100.0,
            self.formula1_stochastic * 100.0,
            self.equation1 * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table1_shape() {
        let out = run(&Config {
            rounds: 60,
            seed: 5,
            p_interference: 0.04,
            jobs: 1,
            cold: false,
        });
        // L and D in the paper's ballpark, with L > D.
        assert!((50.0..75.0).contains(&out.l.mean), "L {}", out.l.mean);
        assert!((33.0..49.0).contains(&out.d.mean), "D {}", out.d.mean);
        assert!(out.l.mean > out.d.mean, "L > D");
        // Near-but-not-certain success.
        assert!(out.observed > 0.85, "observed {}", out.observed);
        assert_eq!(out.formula1_point, 1.0, "means say certain");
        assert!(out.equation1 < 1.0, "Equation 1 keeps the shortfall");
        assert!((out.equation1 - out.observed).abs() < 0.12);
        let text = out.to_string();
        assert!(text.contains("Table 1"));
    }
}
