//! Figure 6: success rate of attacking vi (small files) on a uniprocessor.
//!
//! The paper sweeps file sizes 100 KB–1 MB (500 rounds each) and observes
//! success rates rising roughly with file size from ~1.5 % to ~18 %. The
//! model column is the Section 3.2 prediction: the window start is uniform
//! within the victim's time slice, so
//! `P(success) ≈ P(victim suspended) ≈ window / timeslice`.

use crate::grid::{Family, Grid, GridPoint};
use crate::sweep::{run_sweep, SweepConfig};
use serde::Serialize;
use tocttou_core::model::UniprocessorScenario;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// File sizes to test, in KB.
    pub sizes_kb: Vec<u64>,
    /// Rounds per size (paper: 500).
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for each Monte-Carlo batch (`1` = serial,
    /// `0` = auto); results are identical for every value.
    pub jobs: usize,
    /// Run every round from a cold boot instead of the warm checkpoint
    /// (the byte-identical oracle path; slower, same results).
    pub cold: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sizes_kb: (1..=10).map(|i| i * 100).collect(),
            rounds: 200,
            seed: 6_0001,
            jobs: 1,
            cold: false,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// File size in KB.
    pub size_kb: u64,
    /// Observed success rate.
    pub observed: f64,
    /// Wilson 95 % CI.
    pub ci95: (f64, f64),
    /// Section 3.2 model prediction.
    pub model: f64,
    /// Mean vulnerability-window length, µs.
    pub window_us: f64,
}

/// The full figure.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Sweep rows, by file size.
    pub rows: Vec<Row>,
}

/// Runs the Figure 6 reproduction.
///
/// Two sweeps over the same size ladder share one engine each: a short
/// traced probe per size measures the vulnerability window (essentially
/// deterministic, so 3 rounds suffice — all probes use the same base seed
/// `seed ^ 0x5a5a`, salt 0, as the pre-sweep loop did), then the main
/// untraced sweep measures the success rate with the historical
/// `seed + size_kb` per-size seeds via salt = size_kb.
pub fn run(cfg: &Config) -> Output {
    let probe_grid = Grid::from_points(
        cfg.sizes_kb
            .iter()
            .map(|&kb| GridPoint::new(Family::ViUniprocessor, kb * 1024))
            .collect(),
    );
    let probes = run_sweep(&SweepConfig {
        grid: probe_grid,
        rounds: 3,
        base_seed: cfg.seed ^ 0x5a5a,
        collect_ld: true,
        jobs: cfg.jobs,
        cold: cfg.cold,
    });
    let main = run_sweep(&SweepConfig {
        grid: Grid::file_size_kb_sweep(Family::ViUniprocessor, &cfg.sizes_kb),
        rounds: cfg.rounds,
        base_seed: cfg.seed,
        collect_ld: false,
        jobs: cfg.jobs,
        cold: cfg.cold,
    });
    let mut rows = Vec::new();
    for (probe, sp) in probes.points.iter().zip(&main.points) {
        let size_kb = sp.point.file_size / 1024;
        let window_us = probe.outcome.window_us.unwrap_or(0.0);
        let scenario = Family::ViUniprocessor.build(sp.point.file_size);
        let timeslice_us = scenario.machine.timeslice.as_micros_f64();
        let model = UniprocessorScenario {
            window_us,
            timeslice_us,
            p_block: 0.0,
            p_attacker_ready: 1.0,
            p_attack_completes: 1.0,
        }
        .success_probability()
        .value();
        let mc = &sp.outcome;
        rows.push(Row {
            size_kb,
            observed: mc.rate,
            ci95: mc.rate_ci95,
            model,
            window_us,
        });
    }
    Output { rows }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 6 — vi attack success rate on a uniprocessor (paper: ~1.5%..18%, rising with size)"
        )?;
        writeln!(
            f,
            "{:>8} {:>12} {:>18} {:>10} {:>12}",
            "size KB", "observed", "95% CI", "model", "window µs"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>11.1}% [{:>5.1}%, {:>5.1}%] {:>9.1}% {:>12.0}",
                r.size_kb,
                r.observed * 100.0,
                r.ci95.0 * 100.0,
                r.ci95.1 * 100.0,
                r.model * 100.0,
                r.window_us
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_shows_rising_trend() {
        let out = run(&Config {
            sizes_kb: vec![100, 1000],
            rounds: 120,
            seed: 42,
            jobs: 1,
            cold: false,
        });
        assert_eq!(out.rows.len(), 2);
        let small = &out.rows[0];
        let large = &out.rows[1];
        assert!(
            large.observed > small.observed,
            "success rises with size: {} vs {}",
            small.observed,
            large.observed
        );
        // Model within a few points of observation at 1 MB (~17 %).
        assert!((large.model - large.observed).abs() < 0.10);
        assert!(large.window_us > 9.0 * small.window_us);
        let text = out.to_string();
        assert!(text.contains("Figure 6"));
    }
}
