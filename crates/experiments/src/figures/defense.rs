//! Defense evaluation: the Section 8 counterfactual.
//!
//! The paper closes by calling for effective defenses and pointing to the
//! authors' EDGI proposal. This exhibit re-runs every attack scenario with
//! the simulated kernel's EDGI-style invariant guard enabled and shows the
//! success rates collapse to zero — while benign saves (no attacker
//! interference) are never denied.

use crate::monte_carlo::{run_mc, McConfig};
use serde::Serialize;
use tocttou_os::defense::DefensePolicy;
use tocttou_workloads::scenario::Scenario;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rounds per cell.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for each Monte-Carlo batch (`1` = serial,
    /// `0` = auto); results are identical for every value.
    pub jobs: usize,
    /// Run every round from a cold boot instead of the warm checkpoint
    /// (the byte-identical oracle path; slower, same results).
    pub cold: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            rounds: 120,
            seed: 13_0001,
            jobs: 1,
            cold: false,
        }
    }
}

/// One scenario's with/without-defense comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Scenario name.
    pub scenario: String,
    /// Success rate with the historical (undefended) kernel.
    pub undefended: f64,
    /// Success rate with the EDGI guard.
    pub defended: f64,
    /// Mean defense denials per round (how often the guard actually fired).
    pub denials_per_round: f64,
}

/// The defense table.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Comparison rows.
    pub rows: Vec<Row>,
}

fn denials_per_round(scenario: &Scenario, rounds: u64, seed: u64) -> f64 {
    let mut total = 0u64;
    for i in 0..rounds {
        let (_, handles) = scenario.run_traced(seed + i);
        total += handles.kernel.defense().denials();
    }
    total as f64 / rounds as f64
}

/// Runs the defense evaluation.
pub fn run(cfg: &Config) -> Output {
    let scenarios = [
        Scenario::vi_smp(100 * 1024),
        Scenario::vi_smp(1),
        Scenario::gedit_smp(2048),
        Scenario::gedit_multicore_v2(2048),
        Scenario::pipelined_attack(100 * 1024),
    ];
    let mut rows = Vec::new();
    for scenario in scenarios {
        let undefended = run_mc(
            &scenario,
            &McConfig {
                rounds: cfg.rounds,
                base_seed: cfg.seed,
                collect_ld: false,
                jobs: cfg.jobs,
                cold: cfg.cold,
            },
        )
        .rate;
        let defended_scenario = scenario.clone().with_defense(DefensePolicy::Edgi);
        let defended = run_mc(
            &defended_scenario,
            &McConfig {
                rounds: cfg.rounds,
                base_seed: cfg.seed,
                collect_ld: false,
                jobs: cfg.jobs,
                cold: cfg.cold,
            },
        )
        .rate;
        // Denial counting needs traces; sample a smaller batch.
        let denials = denials_per_round(&defended_scenario, cfg.rounds.min(30), cfg.seed);
        rows.push(Row {
            scenario: scenario.name.clone(),
            undefended,
            defended,
            denials_per_round: denials,
        });
    }
    Output { rows }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Defense — EDGI-style invariant guarding (Section 8 counterfactual)"
        )?;
        writeln!(
            f,
            "{:>28} {:>12} {:>10} {:>16}",
            "scenario", "undefended", "defended", "denials/round"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>28} {:>11.1}% {:>9.1}% {:>16.2}",
                r.scenario,
                r.undefended * 100.0,
                r.defended * 100.0,
                r.denials_per_round
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defense_zeroes_every_scenario() {
        let out = run(&Config {
            rounds: 25,
            seed: 5,
            jobs: 1,
            cold: false,
        });
        assert_eq!(out.rows.len(), 5);
        for r in &out.rows {
            assert_eq!(r.defended, 0.0, "{}: defense must hold", r.scenario);
            assert!(
                r.undefended > 0.2,
                "{}: attack must work without it",
                r.scenario
            );
        }
        // At least the high-success scenarios show the guard firing.
        assert!(out.rows.iter().any(|r| r.denials_per_round > 0.5));
    }
}
