//! Figure 7: the L and D values for vi SMP attack experiments.
//!
//! The paper sweeps file sizes 20 KB–1 MB on the 2-way SMP, measuring per
//! round the victim's laxity L and the attacker's detection period D.
//! L grows linearly with file size (≈17 µs/KB, reaching ~17 ms at 1 MB)
//! while D stays flat around 41 µs, so L ≫ D and the success rate is 100 %
//! across the sweep (Section 5).

use crate::grid::{Family, Grid};
use crate::sweep::{run_sweep, SweepConfig};
use serde::Serialize;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// File sizes to test, in KB (paper: 20..=1000 step 20).
    pub sizes_kb: Vec<u64>,
    /// Traced rounds per size.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for each Monte-Carlo batch (`1` = serial,
    /// `0` = auto); results are identical for every value.
    pub jobs: usize,
    /// Run every round from a cold boot instead of the warm checkpoint
    /// (the byte-identical oracle path; slower, same results).
    pub cold: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sizes_kb: (1..=25).map(|i| i * 40).collect(),
            rounds: 10,
            seed: 7_0001,
            jobs: 1,
            cold: false,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// File size in KB.
    pub size_kb: u64,
    /// Mean measured L, µs.
    pub l_us: f64,
    /// Sample stdev of L.
    pub l_stdev: f64,
    /// Mean measured D, µs.
    pub d_us: f64,
    /// Sample stdev of D.
    pub d_stdev: f64,
    /// Observed success rate (paper: 100 % everywhere).
    pub observed: f64,
}

/// The full figure.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Sweep rows by size.
    pub rows: Vec<Row>,
}

/// Runs the Figure 7 reproduction.
///
/// The whole size ladder goes through one [`run_sweep`] call (shared
/// worker pool, template forked per size); each point's seed salt is its
/// size in KB, so the per-size results are identical to the historical
/// per-size `run_mc` loop at `base_seed = seed + size_kb`.
pub fn run(cfg: &Config) -> Output {
    let sweep = run_sweep(&SweepConfig {
        grid: Grid::file_size_kb_sweep(Family::ViSmp, &cfg.sizes_kb),
        rounds: cfg.rounds,
        base_seed: cfg.seed,
        collect_ld: true,
        jobs: cfg.jobs,
        cold: cfg.cold,
    });
    let mut rows = Vec::new();
    for sp in &sweep.points {
        let mc = &sp.outcome;
        let (l, d) = match (mc.l, mc.d) {
            (Some(l), Some(d)) => (l, d),
            _ => continue,
        };
        rows.push(Row {
            size_kb: sp.point.file_size / 1024,
            l_us: l.mean,
            l_stdev: l.stdev,
            d_us: d.mean,
            d_stdev: d.stdev,
            observed: mc.rate,
        });
    }
    Output { rows }
}

impl Output {
    /// Least-squares slope of L vs size, µs/KB (paper: ≈17 µs/KB).
    pub fn l_slope_us_per_kb(&self) -> f64 {
        let n = self.rows.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let mx = self.rows.iter().map(|r| r.size_kb as f64).sum::<f64>() / n;
        let my = self.rows.iter().map(|r| r.l_us).sum::<f64>() / n;
        let sxy: f64 = self
            .rows
            .iter()
            .map(|r| (r.size_kb as f64 - mx) * (r.l_us - my))
            .sum();
        let sxx: f64 = self
            .rows
            .iter()
            .map(|r| (r.size_kb as f64 - mx).powi(2))
            .sum();
        sxy / sxx
    }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 7 — L and D for vi SMP attacks (paper: L ≈ 17 µs/KB, D ≈ 41 µs flat, success 100%)"
        )?;
        writeln!(
            f,
            "{:>8} {:>12} {:>10} {:>10} {:>8} {:>10}",
            "size KB", "L µs", "±", "D µs", "±", "observed"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>12.1} {:>10.2} {:>10.1} {:>8.2} {:>9.0}%",
                r.size_kb,
                r.l_us,
                r.l_stdev,
                r.d_us,
                r.d_stdev,
                r.observed * 100.0
            )?;
        }
        writeln!(f, "L slope ≈ {:.1} µs/KB", self.l_slope_us_per_kb())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_grows_linearly_d_stays_flat() {
        let out = run(&Config {
            sizes_kb: vec![40, 400, 1000],
            rounds: 5,
            seed: 3,
            jobs: 1,
            cold: false,
        });
        assert_eq!(out.rows.len(), 3);
        let slope = out.l_slope_us_per_kb();
        assert!((14.0..20.0).contains(&slope), "L slope {slope} µs/KB");
        // D flat around 41 µs across the sweep.
        for r in &out.rows {
            assert!(
                (33.0..49.0).contains(&r.d_us),
                "D {} at {} KB",
                r.d_us,
                r.size_kb
            );
            assert!(r.observed > 0.9, "success ~100% at {} KB", r.size_kb);
            assert!(r.l_us > r.d_us, "L > D everywhere (Section 5)");
        }
    }
}
