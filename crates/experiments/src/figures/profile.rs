//! Kernel profiling scorecard: semaphore contention, syscall latency and
//! scheduler counters next to attack success rate.
//!
//! The paper's mechanism is *observable kernel behavior*: the attacker
//! blocks on the victim's per-inode `i_sem` (Section 6.2), cold libc pages
//! cost a trap (Section 6.2.1), and the multiprocessor scheduler places
//! the attacker on an idle CPU inside the victim's check-to-use window.
//! This exhibit prints, per attack scenario, exactly those quantities from
//! the aggregated [`McOutcome::metrics`](crate::monte_carlo::McOutcome):
//! the most-contended semaphores with p50/p95/max wait, the per-syscall
//! latency table (the raw material of Formula (1)'s `D`), and the
//! scheduler counters — side by side with the Monte-Carlo success rate the
//! same rounds produced.

use crate::grid::{Family, Grid, GridPoint};
use crate::monte_carlo::{run_mc, McConfig, McOutcome};
use crate::sweep::{run_sweep, SweepConfig};
use serde::Serialize;
use std::collections::BTreeMap;
use tocttou_os::ids::SemId;
use tocttou_os::metrics::SchedCounters;
use tocttou_sim::metrics::LatencyHistogram;
use tocttou_workloads::scenario::Scenario;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rounds per scenario.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads per Monte-Carlo batch (`1` = serial, `0` = auto);
    /// the profile is identical for every value.
    pub jobs: usize,
    /// Run every round from a cold boot instead of the warm checkpoint
    /// (the byte-identical oracle path; slower, same results).
    pub cold: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            rounds: 120,
            seed: 0x0B5E_47E5, // "observes"
            jobs: 1,
            cold: false,
        }
    }
}

/// How many semaphores the contention table shows.
const TOP_SEMS: usize = 5;

/// Latency summary of one histogram, in microseconds.
#[derive(Debug, Clone, Serialize)]
pub struct HistRow {
    /// What the histogram measures (syscall name, `run_queue`, or a path).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Median upper bound (µs).
    pub p50_us: f64,
    /// 95th-percentile upper bound (µs).
    pub p95_us: f64,
    /// Largest sample (µs).
    pub max_us: f64,
    /// Mean (µs).
    pub mean_us: f64,
}

fn hist_row(name: String, h: &LatencyHistogram) -> HistRow {
    let us = |ns: u64| ns as f64 / 1_000.0;
    HistRow {
        name,
        count: h.count(),
        p50_us: us(h.quantile_ns(0.5).unwrap_or(0)),
        p95_us: us(h.quantile_ns(0.95).unwrap_or(0)),
        max_us: us(h.max_ns().unwrap_or(0)),
        mean_us: h.mean_ns().unwrap_or(0.0) / 1_000.0,
    }
}

/// One semaphore's contention summary.
#[derive(Debug, Clone, Serialize)]
pub struct SemRow {
    /// The inode/directory the semaphore guards (best-effort label from
    /// the scenario's template filesystem; `sem#N` when unknown).
    pub sem: String,
    /// Contended waits (enqueue → hand-off).
    pub wait: HistRow,
    /// Hold times (acquire → release).
    pub hold: HistRow,
}

/// The full profile of one scenario's Monte-Carlo batch.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioProfile {
    /// Scenario name.
    pub scenario: String,
    /// Rounds profiled.
    pub rounds: u64,
    /// Attack success rate over those rounds.
    pub rate: f64,
    /// Summed scheduler counters.
    pub counters: SchedCounters,
    /// Ready-queue-to-dispatch delay.
    pub run_queue: HistRow,
    /// Per-syscall latency, in [`SyscallName::ALL`] order, touched calls
    /// only.
    ///
    /// [`SyscallName::ALL`]: tocttou_os::process::SyscallName::ALL
    pub syscalls: Vec<HistRow>,
    /// The most-contended semaphores, by wait count descending (semaphore
    /// id breaks ties), at most [`TOP_SEMS`].
    pub top_sems: Vec<SemRow>,
}

/// The profiling scorecard across the standard attack scenarios.
#[derive(Debug, Clone, Serialize)]
pub struct Output {
    /// Per-scenario profiles.
    pub rows: Vec<ScenarioProfile>,
}

/// Best-effort map from semaphore id to the path it guards.
///
/// Two sources, in priority order: the scenario's template filesystem
/// (pre-round identities — e.g. the original document inode, even if a
/// round later unlinks it), then one replayed round with the VFS's
/// semaphore-label recorder switched on, which names the inodes the round
/// itself creates — including ones already unlinked again by round end,
/// like the symlink the attacker plants and the victim's rename replaces.
/// Inode allocation is deterministic, so the replay's ids match the
/// profiled rounds'.
fn sem_labels(scenario: &Scenario, seed: u64) -> BTreeMap<SemId, String> {
    let vfs = scenario.template_vfs();
    let l = &scenario.layout;
    let mut paths: Vec<&str> = vec![
        &l.passwd,
        &l.home,
        &l.doc,
        &l.backup,
        &l.temp,
        &l.attack_dir,
        &l.dummy,
    ];
    let mut parents: Vec<String> = Vec::new();
    for p in &paths {
        if let Some(idx) = p.rfind('/') {
            parents.push(if idx == 0 {
                "/".into()
            } else {
                p[..idx].into()
            });
        }
    }
    paths.extend(parents.iter().map(String::as_str));
    let mut map = BTreeMap::new();
    for p in paths {
        if let Ok(sem) = vfs.file_sem_of(p, false) {
            map.entry(sem).or_insert_with(|| p.to_string());
        }
    }
    let mut handles = scenario.build(seed, false);
    handles.kernel.vfs_mut().record_sem_labels();
    let _ = scenario.finish_round(&mut handles);
    for (sem, path) in handles.kernel.vfs().sem_labels() {
        map.entry(*sem).or_insert_with(|| path.clone());
    }
    map
}

/// Profiles one scenario: runs the Monte-Carlo batch and condenses its
/// aggregated metrics into a [`ScenarioProfile`]. Exposed so the golden
/// test can pin a single scenario.
pub fn profile_scenario(scenario: &Scenario, cfg: &Config) -> ScenarioProfile {
    let out = run_mc(
        scenario,
        &McConfig {
            rounds: cfg.rounds,
            base_seed: cfg.seed,
            collect_ld: false,
            jobs: cfg.jobs,
            cold: cfg.cold,
        },
    );
    condense(scenario, cfg.seed, out)
}

/// Condenses one batch's aggregated metrics into a [`ScenarioProfile`].
///
/// Shared by [`profile_scenario`] (standalone `run_mc`) and [`run`] (the
/// sweep-engine path); both feed it the same `McOutcome` bytes, so the
/// profile is identical either way — the `profile_golden` fixture pins
/// this.
fn condense(scenario: &Scenario, seed: u64, out: McOutcome) -> ScenarioProfile {
    let labels = sem_labels(scenario, seed);
    let mut syscalls = Vec::new();
    let mut run_queue = hist_row("run_queue".into(), &LatencyHistogram::new());
    // Gather wait/hold pairs per semaphore before ranking.
    let mut sems: BTreeMap<SemId, (LatencyHistogram, LatencyHistogram)> = BTreeMap::new();
    for &(id, ref h) in &out.metrics.hists {
        if let Some(name) = id.as_syscall() {
            syscalls.push(hist_row(name.to_string(), h));
        } else if id == tocttou_os::metrics::MetricId::RUN_QUEUE {
            run_queue = hist_row("run_queue".into(), h);
        } else if let Some((sem, is_hold)) = id.as_sem() {
            let entry = sems.entry(sem).or_default();
            if is_hold {
                entry.1 = *h;
            } else {
                entry.0 = *h;
            }
        }
    }
    // Rank by contended-wait count; drop never-contended semaphores.
    let mut ranked: Vec<(SemId, (LatencyHistogram, LatencyHistogram))> = sems
        .into_iter()
        .filter(|(_, (wait, _))| !wait.is_empty())
        .collect();
    ranked.sort_by(|a, b| b.1 .0.count().cmp(&a.1 .0.count()).then(a.0.cmp(&b.0)));
    ranked.truncate(TOP_SEMS);
    let top_sems = ranked
        .into_iter()
        .map(|(sem, (wait, hold))| SemRow {
            sem: labels
                .get(&sem)
                .map_or_else(|| format!("sem#{}", sem.0), |p| format!("i_sem({p})")),
            wait: hist_row("wait".into(), &wait),
            hold: hist_row("hold".into(), &hold),
        })
        .collect();
    ScenarioProfile {
        scenario: out.scenario,
        rounds: out.rounds,
        rate: out.rate,
        counters: out.metrics.counters,
        run_queue,
        syscalls,
        top_sems,
    }
}

/// Runs the profiler across the four standard attack scenarios (the same
/// set the detector scorecard uses).
///
/// The four batches run as one [`run_sweep`] grid — shared worker pool,
/// snapshot/forked templates — with salt 0 everywhere, so each scenario
/// still sees base seed `cfg.seed` and its profile matches a standalone
/// [`profile_scenario`] call byte for byte.
pub fn run(cfg: &Config) -> Output {
    let grid = Grid::from_points(vec![
        GridPoint::new(Family::ViSmp, 100 * 1024),
        GridPoint::new(Family::ViSmp, 1),
        GridPoint::new(Family::GeditSmp, 2048),
        GridPoint::new(Family::GeditMulticoreV2, 2048),
    ]);
    let sweep = run_sweep(&SweepConfig {
        grid: grid.clone(),
        rounds: cfg.rounds,
        base_seed: cfg.seed,
        collect_ld: false,
        jobs: cfg.jobs,
        cold: cfg.cold,
    });
    Output {
        rows: grid
            .points
            .iter()
            .zip(sweep.points)
            .map(|(point, sp)| condense(&point.scenario(), cfg.seed, sp.outcome))
            .collect(),
    }
}

impl std::fmt::Display for ScenarioProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Profile — {} ({} rounds, success {:.1}%)",
            self.scenario,
            self.rounds,
            self.rate * 100.0
        )?;
        let c = &self.counters;
        writeln!(
            f,
            "  sched: {} ctx switches, {} migrations, {} idle wakes, {} preempts, \
             {} traps, {} vfs ops, {} EDGI denials",
            c.context_switches,
            c.cpu_migrations,
            c.idle_wakes,
            c.preemptions,
            c.traps,
            c.vfs_ops,
            c.edgi_denials
        )?;
        writeln!(
            f,
            "  run-queue delay: n={} p50 {:.1}µs p95 {:.1}µs max {:.1}µs",
            self.run_queue.count,
            self.run_queue.p50_us,
            self.run_queue.p95_us,
            self.run_queue.max_us
        )?;
        if self.top_sems.is_empty() {
            writeln!(f, "  i_sem contention: none observed")?;
        } else {
            writeln!(f, "  top contended i_sems (by waits):")?;
            for s in &self.top_sems {
                writeln!(
                    f,
                    "    {:<32} waits {:>5}  p50 {:>7.1}µs  p95 {:>7.1}µs  max {:>7.1}µs | \
                     holds {:>5} mean {:>6.1}µs",
                    s.sem,
                    s.wait.count,
                    s.wait.p50_us,
                    s.wait.p95_us,
                    s.wait.max_us,
                    s.hold.count,
                    s.hold.mean_us
                )?;
            }
        }
        writeln!(f, "  syscall latency (µs):")?;
        writeln!(
            f,
            "    {:<10} {:>7} {:>8} {:>8} {:>8} {:>8}",
            "call", "n", "p50", "p95", "max", "mean"
        )?;
        for r in &self.syscalls {
            writeln!(
                f,
                "    {:<10} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
                r.name, r.count, r.p50_us, r.p95_us, r.max_us, r.mean_us
            )?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Profile — kernel observability scorecard (counters, contention, latency)"
        )?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_every_scenario_with_live_metrics() {
        let out = run(&Config {
            rounds: 20,
            seed: 11,
            jobs: 1,
            cold: false,
        });
        assert_eq!(out.rows.len(), 4);
        for r in &out.rows {
            assert!(r.rate > 0.2, "{}: attack must work", r.scenario);
            assert!(
                r.counters.context_switches > 0 && r.counters.vfs_ops > 0,
                "{}: counters must be live",
                r.scenario
            );
            assert!(!r.syscalls.is_empty(), "{}: syscalls recorded", r.scenario);
            assert!(
                r.run_queue.count > 0,
                "{}: every dispatch records a run-queue delay",
                r.scenario
            );
        }
        // The gedit scenarios block on the home directory's i_sem (that is
        // the paper's Figure 8 mechanism), so contention must show up and
        // carry a resolved path label.
        let gedit = &out.rows[2];
        assert!(
            !gedit.top_sems.is_empty(),
            "gedit-smp must show sem contention"
        );
        assert!(
            gedit.top_sems.iter().any(|s| s.sem.starts_with("i_sem(")),
            "contended sems must resolve to paths: {:?}",
            gedit.top_sems.iter().map(|s| &s.sem).collect::<Vec<_>>()
        );
        let text = out.to_string();
        assert!(text.contains("syscall latency"), "{text}");
        assert!(text.contains("ctx switches"), "{text}");
    }

    #[test]
    fn profile_is_independent_of_jobs() {
        let scenario = Scenario::gedit_smp(2048);
        let cfg1 = Config {
            rounds: 16,
            seed: 77,
            jobs: 1,
            cold: false,
        };
        let a = profile_scenario(&scenario, &cfg1);
        let b = profile_scenario(&scenario, &Config { jobs: 4, ..cfg1 });
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
