//! Shared command-line flag parsing for the `repro` and `trace` binaries.
//!
//! Both binaries accept the same Monte-Carlo knobs (`--rounds`, `--seed`,
//! `--jobs`); [`CommonArgs`] parses them once so the two argument loops
//! cannot drift apart. Each binary keeps its own loop for its private
//! flags and calls [`CommonArgs::accept`] first.

/// The `--rounds` / `--seed` / `--jobs` flags shared by both binaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommonArgs {
    /// `--rounds N`, if given.
    pub rounds: Option<u64>,
    /// `--seed N`, if given.
    pub seed: Option<u64>,
    /// `--jobs N` (`0` = auto-detect), if given.
    pub jobs: Option<usize>,
}

impl CommonArgs {
    /// Consumes `arg` (and its value from `rest`) if it is one of the
    /// shared flags. Returns `Ok(true)` when the flag was recognized,
    /// `Ok(false)` when the caller should handle it.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message when a recognized flag is missing its
    /// value or the value does not parse.
    pub fn accept(
        &mut self,
        arg: &str,
        rest: &mut dyn Iterator<Item = String>,
    ) -> Result<bool, String> {
        match arg {
            "--rounds" => {
                self.rounds = Some(parse_value(arg, rest)?);
                Ok(true)
            }
            "--seed" => {
                self.seed = Some(parse_value(arg, rest)?);
                Ok(true)
            }
            "--jobs" => {
                self.jobs = Some(parse_value(arg, rest)?);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Overwrites a config's fields with whichever flags were given.
    pub fn apply(&self, rounds: &mut u64, seed: &mut u64, jobs: &mut usize) {
        if let Some(r) = self.rounds {
            *rounds = r;
        }
        if let Some(s) = self.seed {
            *seed = s;
        }
        if let Some(j) = self.jobs {
            *jobs = j;
        }
    }
}

fn parse_value<T: std::str::FromStr>(
    flag: &str,
    rest: &mut dyn Iterator<Item = String>,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let raw = rest.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|e| format!("invalid {flag} value {raw:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<(CommonArgs, Vec<String>), String> {
        let mut common = CommonArgs::default();
        let mut leftover = Vec::new();
        let mut it = tokens.iter().map(|s| s.to_string());
        while let Some(arg) = it.next() {
            if !common.accept(&arg, &mut it)? {
                leftover.push(arg);
            }
        }
        Ok((common, leftover))
    }

    #[test]
    fn accepts_all_three_flags_and_passes_others_through() {
        let (c, rest) = parse(&[
            "vi-smp", "--rounds", "40", "--seed", "7", "--jobs", "0", "--width",
        ])
        .unwrap();
        assert_eq!(c.rounds, Some(40));
        assert_eq!(c.seed, Some(7));
        assert_eq!(c.jobs, Some(0));
        assert_eq!(rest, ["vi-smp", "--width"]);
    }

    #[test]
    fn apply_overwrites_only_given_flags() {
        let (c, _) = parse(&["--jobs", "4"]).unwrap();
        let (mut rounds, mut seed, mut jobs) = (120u64, 0xD07u64, 1usize);
        c.apply(&mut rounds, &mut seed, &mut jobs);
        assert_eq!((rounds, seed, jobs), (120, 0xD07, 4));
    }

    #[test]
    fn missing_or_bad_values_are_reported() {
        assert!(parse(&["--rounds"]).unwrap_err().contains("--rounds"));
        let err = parse(&["--seed", "xyzzy"]).unwrap_err();
        assert!(err.contains("--seed") && err.contains("xyzzy"), "{err}");
    }
}
