//! Shared command-line flag parsing for the `repro`, `trace`, `sweep` and
//! `campaign` binaries.
//!
//! All four binaries accept the same Monte-Carlo knobs (`--rounds`,
//! `--seed`, `--jobs`); [`CommonArgs`] parses them once so the argument
//! loops cannot drift apart. The grid axes of the `sweep` and `campaign`
//! binaries (`--grid`/`--family`/`--size-kb`/`--points`) follow the same
//! pattern through [`GridArgs`] rather than hand-rolled parsers. Each
//! binary keeps its own loop for its private flags (`campaign`'s store
//! knobs, `sweep`'s `--collect-ld`) and calls the shared `accept` methods
//! first.

use crate::grid::{Family, Grid, GridKind};

/// The `--rounds` / `--seed` / `--jobs` / `--cold` / `--anatomy` /
/// `--perfetto` flags shared by the binaries.
///
/// Every binary parses all of them so invocations stay flag-compatible;
/// a binary that has no use for a flag simply ignores it (the same
/// parity contract `trace` already applies to `--rounds`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommonArgs {
    /// `--rounds N`, if given.
    pub rounds: Option<u64>,
    /// `--seed N`, if given.
    pub seed: Option<u64>,
    /// `--jobs N` (`0` = auto-detect), if given.
    pub jobs: Option<usize>,
    /// `--cold`: run every round from a cold boot instead of the warm
    /// checkpoint — the byte-identical oracle path (slower, same results).
    pub cold: bool,
    /// `--anatomy`: shorthand for the race-window anatomy scorecard
    /// (`repro` renders it as the `anatomy` exhibit; elsewhere parity-only).
    pub anatomy: bool,
    /// `--perfetto PATH`: write a Chrome trace-event / Perfetto JSON view
    /// of the round (`trace` honors it; elsewhere parity-only).
    pub perfetto: Option<String>,
}

impl CommonArgs {
    /// Consumes `arg` (and its value from `rest`) if it is one of the
    /// shared flags. Returns `Ok(true)` when the flag was recognized,
    /// `Ok(false)` when the caller should handle it.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message when a recognized flag is missing its
    /// value or the value does not parse.
    pub fn accept(
        &mut self,
        arg: &str,
        rest: &mut dyn Iterator<Item = String>,
    ) -> Result<bool, String> {
        match arg {
            "--rounds" => {
                self.rounds = Some(parse_value(arg, rest)?);
                Ok(true)
            }
            "--seed" => {
                self.seed = Some(parse_value(arg, rest)?);
                Ok(true)
            }
            "--jobs" => {
                self.jobs = Some(parse_value(arg, rest)?);
                Ok(true)
            }
            "--cold" => {
                self.cold = true;
                Ok(true)
            }
            "--anatomy" => {
                self.anatomy = true;
                Ok(true)
            }
            "--perfetto" => {
                self.perfetto = Some(rest.next().ok_or_else(|| format!("{arg} needs a value"))?);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Overwrites a config's fields with whichever flags were given.
    pub fn apply(&self, rounds: &mut u64, seed: &mut u64, jobs: &mut usize) {
        if let Some(r) = self.rounds {
            *rounds = r;
        }
        if let Some(s) = self.seed {
            *seed = s;
        }
        if let Some(j) = self.jobs {
            *jobs = j;
        }
    }
}

/// The grid-axis flags of the `sweep` binary: `--grid`, `--family`,
/// `--size-kb`, `--points`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GridArgs {
    /// `--grid <d|size|cpus|pipelined|swap|taxonomy>`, if given.
    pub grid: Option<GridKind>,
    /// `--family <name>` (see [`Family::name`]), if given.
    pub family: Option<Family>,
    /// `--size-kb N` document size for non-size grids, if given.
    pub size_kb: Option<u64>,
    /// `--points N` grid resolution, if given.
    pub points: Option<usize>,
}

impl GridArgs {
    /// Consumes `arg` (and its value from `rest`) if it is one of the
    /// grid flags, mirroring [`CommonArgs::accept`].
    ///
    /// # Errors
    ///
    /// Returns a user-facing message when a recognized flag is missing
    /// its value or the value does not parse.
    pub fn accept(
        &mut self,
        arg: &str,
        rest: &mut dyn Iterator<Item = String>,
    ) -> Result<bool, String> {
        match arg {
            "--grid" => {
                let raw: String = parse_value(arg, rest)?;
                self.grid = Some(GridKind::parse(&raw).ok_or_else(|| {
                    format!(
                        "invalid --grid value {raw:?}: expected d, size, cpus, pipelined, swap or taxonomy"
                    )
                })?);
                Ok(true)
            }
            "--family" => {
                let raw: String = parse_value(arg, rest)?;
                self.family = Some(Family::parse(&raw).ok_or_else(|| {
                    let names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
                    format!(
                        "invalid --family value {raw:?}: expected one of {}",
                        names.join(", ")
                    )
                })?);
                Ok(true)
            }
            "--size-kb" => {
                self.size_kb = Some(parse_value(arg, rest)?);
                Ok(true)
            }
            "--points" => {
                self.points = Some(parse_value(arg, rest)?);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Builds the requested grid, filling unset flags with defaults
    /// (family `gedit-smp`, the family's default file size, 8 points).
    ///
    /// # Errors
    ///
    /// Returns a usage message when `--grid` was never given or
    /// `--points 0` was requested.
    pub fn build_grid(&self) -> Result<Grid, String> {
        let kind = self
            .grid
            .ok_or("missing --grid <d|size|cpus|pipelined|swap|taxonomy>".to_string())?;
        if self.points == Some(0) {
            return Err("invalid --points 0: a grid needs at least one point".into());
        }
        let family = self.family.unwrap_or(Family::GeditSmp);
        let file_size = self
            .size_kb
            .map(|kb| kb * 1024)
            .unwrap_or_else(|| family.default_file_size());
        Ok(kind.build(family, file_size, self.points.unwrap_or(8)))
    }
}

fn parse_value<T: std::str::FromStr>(
    flag: &str,
    rest: &mut dyn Iterator<Item = String>,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let raw = rest.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|e| format!("invalid {flag} value {raw:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<(CommonArgs, Vec<String>), String> {
        let mut common = CommonArgs::default();
        let mut leftover = Vec::new();
        let mut it = tokens.iter().map(|s| s.to_string());
        while let Some(arg) = it.next() {
            if !common.accept(&arg, &mut it)? {
                leftover.push(arg);
            }
        }
        Ok((common, leftover))
    }

    #[test]
    fn accepts_all_three_flags_and_passes_others_through() {
        let (c, rest) = parse(&[
            "vi-smp", "--rounds", "40", "--seed", "7", "--jobs", "0", "--width",
        ])
        .unwrap();
        assert_eq!(c.rounds, Some(40));
        assert_eq!(c.seed, Some(7));
        assert_eq!(c.jobs, Some(0));
        assert_eq!(rest, ["vi-smp", "--width"]);
    }

    #[test]
    fn apply_overwrites_only_given_flags() {
        let (c, _) = parse(&["--jobs", "4"]).unwrap();
        let (mut rounds, mut seed, mut jobs) = (120u64, 0xD07u64, 1usize);
        c.apply(&mut rounds, &mut seed, &mut jobs);
        assert_eq!((rounds, seed, jobs), (120, 0xD07, 4));
    }

    #[test]
    fn missing_or_bad_values_are_reported() {
        assert!(parse(&["--rounds"]).unwrap_err().contains("--rounds"));
        let err = parse(&["--seed", "xyzzy"]).unwrap_err();
        assert!(err.contains("--seed") && err.contains("xyzzy"), "{err}");
        assert!(parse(&["--perfetto"]).unwrap_err().contains("--perfetto"));
    }

    #[test]
    fn forensics_flags_parse_everywhere() {
        let (c, rest) = parse(&["--anatomy", "--perfetto", "out.json", "vi-smp"]).unwrap();
        assert!(c.anatomy);
        assert_eq!(c.perfetto.as_deref(), Some("out.json"));
        assert_eq!(rest, ["vi-smp"]);
        let (c, _) = parse(&["--rounds", "5"]).unwrap();
        assert!(!c.anatomy && c.perfetto.is_none(), "both default off");
    }

    fn parse_grid(tokens: &[&str]) -> Result<(GridArgs, Vec<String>), String> {
        let mut args = GridArgs::default();
        let mut leftover = Vec::new();
        let mut it = tokens.iter().map(|s| s.to_string());
        while let Some(arg) = it.next() {
            if !args.accept(&arg, &mut it)? {
                leftover.push(arg);
            }
        }
        Ok((args, leftover))
    }

    #[test]
    fn grid_args_accept_all_axes() {
        let (g, rest) = parse_grid(&[
            "--grid",
            "d",
            "--family",
            "vi-smp",
            "--size-kb",
            "40",
            "--points",
            "4",
            "--json",
        ])
        .unwrap();
        assert_eq!(g.grid, Some(GridKind::D));
        assert_eq!(g.family, Some(Family::ViSmp));
        assert_eq!(g.size_kb, Some(40));
        assert_eq!(g.points, Some(4));
        assert_eq!(rest, ["--json"]);
        let grid = g.build_grid().unwrap();
        assert_eq!(grid.len(), 4);
        assert!(grid.points.iter().all(|p| p.file_size == 40 * 1024));
    }

    #[test]
    fn grid_args_reject_unknown_axis_and_family() {
        let err = parse_grid(&["--grid", "bogus"]).unwrap_err();
        assert!(err.contains("--grid") && err.contains("bogus"), "{err}");
        let err = parse_grid(&["--family", "emacs"]).unwrap_err();
        assert!(err.contains("gedit-smp"), "lists valid names: {err}");
    }

    #[test]
    fn grid_args_reject_zero_points() {
        let (g, _) = parse_grid(&["--grid", "d", "--points", "0"]).unwrap();
        let err = g.build_grid().unwrap_err();
        assert!(err.contains("--points 0"), "{err}");
    }

    #[test]
    fn taxonomy_grid_ignores_family_and_size() {
        let (g, _) = parse_grid(&["--grid", "taxonomy", "--family", "vi-smp"]).unwrap();
        assert_eq!(g.grid, Some(GridKind::Taxonomy));
        let grid = g.build_grid().unwrap();
        assert_eq!(grid.len(), Family::DSL_LIBRARY.len());
        assert_eq!(grid.points[0].family, Family::TmpLogrotate);
    }

    #[test]
    fn grid_defaults_fill_in() {
        let (g, _) = parse_grid(&["--grid", "d"]).unwrap();
        let grid = g.build_grid().unwrap();
        assert_eq!(grid.len(), 8, "default 8 points");
        assert!(
            grid.points
                .iter()
                .all(|p| p.family == Family::GeditSmp && p.file_size == 2048),
            "defaults: gedit-smp at its default size"
        );
        assert!(GridArgs::default().build_grid().is_err(), "--grid required");
    }
}
