//! JSONL export of a traced round: kernel events, detections, metrics.
//!
//! One line per record, so the output streams into any line-oriented
//! tool (`jq`, pandas, a spreadsheet importer). The layout is:
//!
//! 1. a **header** line with the export [`SCHEMA_VERSION`], the
//!    scenario/seed/machine identity, host metadata (`host_cpus`, build
//!    profile) and the record counts — including how many trace records
//!    and spans a bounded buffer *dropped*, so a truncated export is
//!    always detectable;
//! 2. one **event** line per kernel trace record, oldest first;
//! 3. one **detection** line per race the passive detector observed;
//! 4. a final **metrics** line carrying the round's full
//!    [`MetricsSnapshot`](tocttou_os::metrics::MetricsSnapshot) —
//!    scheduler counters plus every latency histogram.
//!
//! Every line is a self-describing JSON object with a `"type"` field.

use serde::{Serialize, Value};
use std::io::{self, Write};
use tocttou_os::event::OsEvent;
use tocttou_os::ids::{CpuId, Pid, SemId};
use tocttou_os::kernel::Kernel;
use tocttou_sim::time::SimTime;

/// Version of the JSONL layout. Bumped whenever a header field or line
/// shape changes, so downstream consumers can dispatch instead of
/// sniffing. Version 1 was the pre-versioned layout (no `schema_version`
/// field); version 2 added host metadata and span-drop accounting.
pub const SCHEMA_VERSION: u64 = 2;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn pid(p: Pid) -> Value {
    Value::UInt(u64::from(p.0))
}

fn cpu(c: CpuId) -> Value {
    Value::UInt(u64::from(c.0))
}

fn sem(s: SemId) -> Value {
    Value::UInt(u64::from(s.0))
}

fn at(t: SimTime) -> Value {
    Value::UInt(t.as_nanos())
}

/// Flattens one kernel event into `(kind, fields)` form.
fn event_value(t: SimTime, ev: &OsEvent) -> Value {
    let mut fields: Vec<(&str, Value)> = vec![("type", Value::Str("event".into()))];
    let kind = |f: &mut Vec<(&str, Value)>, k: &str| {
        f.push(("kind", Value::Str(k.to_owned())));
    };
    fields.push(("at_ns", at(t)));
    match ev {
        OsEvent::Spawn { pid: p, name } => {
            kind(&mut fields, "spawn");
            fields.push(("pid", pid(*p)));
            fields.push(("name", Value::Str(name.clone())));
        }
        OsEvent::SyscallEnter { pid: p, call, path } => {
            kind(&mut fields, "syscall_enter");
            fields.push(("pid", pid(*p)));
            fields.push(("call", Value::Str(call.to_string())));
            fields.push(("path", path.serialize_value()));
        }
        OsEvent::SyscallExit { pid: p, call, ok } => {
            kind(&mut fields, "syscall_exit");
            fields.push(("pid", pid(*p)));
            fields.push(("call", Value::Str(call.to_string())));
            fields.push(("ok", Value::Bool(*ok)));
        }
        OsEvent::Commit { pid: p, call } => {
            kind(&mut fields, "commit");
            fields.push(("pid", pid(*p)));
            fields.push(("call", Value::Str(call.to_string())));
        }
        OsEvent::SemEnqueue { pid: p, sem: s } => {
            kind(&mut fields, "sem_enqueue");
            fields.push(("pid", pid(*p)));
            fields.push(("sem", sem(*s)));
        }
        OsEvent::SemAcquire { pid: p, sem: s } => {
            kind(&mut fields, "sem_acquire");
            fields.push(("pid", pid(*p)));
            fields.push(("sem", sem(*s)));
        }
        OsEvent::SemRelease { pid: p, sem: s } => {
            kind(&mut fields, "sem_release");
            fields.push(("pid", pid(*p)));
            fields.push(("sem", sem(*s)));
        }
        OsEvent::Trap { pid: p, dur } => {
            kind(&mut fields, "trap");
            fields.push(("pid", pid(*p)));
            fields.push(("dur_ns", Value::UInt(dur.as_nanos())));
        }
        OsEvent::Dispatch { pid: p, cpu: c } => {
            kind(&mut fields, "dispatch");
            fields.push(("pid", pid(*p)));
            fields.push(("cpu", cpu(*c)));
        }
        OsEvent::Preempt { pid: p, cpu: c } => {
            kind(&mut fields, "preempt");
            fields.push(("pid", pid(*p)));
            fields.push(("cpu", cpu(*c)));
        }
        OsEvent::BlockTimed { pid: p } => {
            kind(&mut fields, "block_timed");
            fields.push(("pid", pid(*p)));
        }
        OsEvent::Wake { pid: p } => {
            kind(&mut fields, "wake");
            fields.push(("pid", pid(*p)));
        }
        OsEvent::BgStart { cpu: c } => {
            kind(&mut fields, "bg_start");
            fields.push(("cpu", cpu(*c)));
        }
        OsEvent::BgEnd { cpu: c } => {
            kind(&mut fields, "bg_end");
            fields.push(("cpu", cpu(*c)));
        }
        OsEvent::DefenseDenied { pid: p, call } => {
            kind(&mut fields, "defense_denied");
            fields.push(("pid", pid(*p)));
            fields.push(("call", Value::Str(call.to_string())));
        }
        OsEvent::Marker { pid: p, label } => {
            kind(&mut fields, "marker");
            fields.push(("pid", pid(*p)));
            fields.push(("label", Value::Str((*label).to_owned())));
        }
        OsEvent::Exit { pid: p } => {
            kind(&mut fields, "exit");
            fields.push(("pid", pid(*p)));
        }
    }
    obj(fields)
}

/// Writes a traced round as JSONL: header, events, detections, metrics.
///
/// Returns the number of lines written.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn export_jsonl<W: Write>(
    w: &mut W,
    scenario: &str,
    seed: u64,
    kernel: &Kernel,
) -> io::Result<u64> {
    let mut lines = 0u64;
    let mut emit = |w: &mut W, v: &Value| -> io::Result<()> {
        let text = serde_json::to_string(v).expect("JSON serialization is infallible");
        writeln!(w, "{text}")?;
        lines += 1;
        Ok(())
    };

    let trace = kernel.trace();
    let detections = kernel.detections();
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get() as u64);
    let build = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let header = obj(vec![
        ("type", Value::Str("header".into())),
        ("schema_version", Value::UInt(SCHEMA_VERSION)),
        ("scenario", Value::Str(scenario.to_owned())),
        ("seed", Value::UInt(seed)),
        ("machine", Value::Str(kernel.machine().name.to_owned())),
        ("cpus", Value::UInt(kernel.machine().cpus as u64)),
        ("host_cpus", Value::UInt(host_cpus)),
        ("build", Value::Str(build.into())),
        ("now_ns", at(kernel.now())),
        ("events", Value::UInt(trace.len() as u64)),
        ("events_dropped", Value::UInt(trace.dropped())),
        ("detections", Value::UInt(detections.len() as u64)),
        ("detections_dropped", Value::UInt(detections.dropped())),
        ("metrics_enabled", Value::Bool(kernel.metrics().enabled())),
        ("spans_enabled", Value::Bool(kernel.spans().enabled())),
        ("spans", Value::UInt(kernel.spans().ring().len() as u64)),
        (
            "spans_dropped",
            Value::UInt(kernel.spans().ring().dropped()),
        ),
    ]);
    emit(w, &header)?;

    for r in trace.iter() {
        emit(w, &event_value(r.at, &r.event))?;
    }

    for r in detections.iter() {
        let e = &r.event;
        let line = obj(vec![
            ("type", Value::Str("detection".into())),
            ("at_ns", at(r.at)),
            ("check", Value::Str(e.pair.check().name().to_owned())),
            ("use", Value::Str(e.pair.use_call().name().to_owned())),
            ("victim", pid(e.victim)),
            ("attacker", pid(e.attacker)),
            ("path", Value::Str(e.path.to_string())),
            ("t_check_ns", at(e.t_check)),
            ("t_use_ns", at(e.t_use)),
            ("mutation", Value::Str(e.mutation.name().to_owned())),
            ("t_mutation_ns", at(e.t_mutation)),
            ("blocked", Value::Bool(e.blocked)),
            ("latency_ns", Value::UInt(e.latency().as_nanos())),
        ]);
        emit(w, &line)?;
    }

    let metrics = match kernel.metrics().snapshot().serialize_value() {
        Value::Object(fields) => {
            let mut all = vec![("type".to_owned(), Value::Str("metrics".into()))];
            all.extend(fields);
            Value::Object(all)
        }
        other => other,
    };
    emit(w, &metrics)?;
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tocttou_workloads::scenario::Scenario;

    #[test]
    fn export_covers_header_events_detections_metrics() {
        let scenario = Scenario::vi_smp(1);
        let (result, handles) = scenario.run_traced(0xE59);
        assert!(result.victim_exited);
        let mut buf = Vec::new();
        let lines = export_jsonl(&mut buf, &scenario.name, 0xE59, &handles.kernel).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed: Vec<Value> = text
            .lines()
            .map(|l| serde_json::from_str::<Value>(l).expect("every line parses"))
            .collect();
        assert_eq!(parsed.len() as u64, lines);

        let header = &parsed[0];
        assert_eq!(header.get("type"), Some(&Value::Str("header".into())));
        assert_eq!(
            header.get("schema_version").unwrap().as_u64(),
            Some(SCHEMA_VERSION)
        );
        assert!(
            header.get("host_cpus").unwrap().as_u64().is_some(),
            "host metadata present"
        );
        assert!(
            matches!(header.get("build"), Some(Value::Str(b)) if b == "debug" || b == "release"),
            "build profile recorded"
        );
        assert_eq!(
            header.get("spans_dropped").unwrap().as_u64(),
            Some(0),
            "spans-off round drops nothing"
        );
        assert_eq!(header.get("spans_enabled"), Some(&Value::Bool(false)));
        let events = header.get("events").unwrap().as_u64().unwrap();
        let detections = header.get("detections").unwrap().as_u64().unwrap();
        assert_eq!(
            header.get("events_dropped").unwrap().as_u64(),
            Some(0),
            "unbounded trace drops nothing"
        );
        assert_eq!(lines, 1 + events + detections + 1);
        assert!(events > 0, "a traced round records events");

        let last = parsed.last().unwrap();
        assert_eq!(last.get("type"), Some(&Value::Str("metrics".into())));
        assert!(last.get("counters").is_some() && last.get("hists").is_some());
    }
}
