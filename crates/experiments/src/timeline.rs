//! ASCII event timelines in the style of the paper's Figures 8 and 10.
//!
//! A [`Timeline`] is built from a kernel trace: one lane per process, one
//! span per system call (with blocked-on-semaphore and trap sub-intervals),
//! rendered as a fixed-width text chart.

use tocttou_os::event::OsEvent;
use tocttou_os::ids::Pid;
use tocttou_os::process::SyscallName;
use tocttou_sim::time::SimTime;
use tocttou_sim::trace::Trace;

/// How a span's interior is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Executing (syscall body).
    Exec,
    /// Blocked on a semaphore.
    Blocked,
    /// Page-fault trap.
    Trap,
}

/// One drawn interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
    /// Label (syscall name or marker).
    pub label: String,
    /// Drawing style.
    pub kind: SpanKind,
}

/// One process's row.
#[derive(Debug, Clone)]
pub struct Lane {
    /// Display name.
    pub label: String,
    /// Spans in chronological order.
    pub spans: Vec<Span>,
}

/// A multi-lane timeline.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Lanes in display order.
    pub lanes: Vec<Lane>,
    /// Time of the chart's left edge.
    pub origin: SimTime,
    /// Time of the chart's right edge.
    pub end: SimTime,
    /// Records the source trace evicted before this timeline was built
    /// (non-zero only for bounded traces). A chart missing its earliest
    /// spans says so instead of silently starting late.
    pub dropped: u64,
}

impl Timeline {
    /// Builds a timeline for the given processes from a trace, windowed to
    /// `[origin, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `origin >= end`.
    pub fn from_trace(
        trace: &Trace<OsEvent>,
        procs: &[(Pid, &str)],
        origin: SimTime,
        end: SimTime,
    ) -> Timeline {
        assert!(origin < end, "empty timeline window");
        let mut lanes = Vec::new();
        for &(pid, label) in procs {
            let mut spans: Vec<Span> = Vec::new();
            let mut call_start: Option<(SimTime, SyscallName)> = None;
            let mut block_start: Option<SimTime> = None;
            for r in trace.iter() {
                if r.at > end {
                    break;
                }
                match &r.event {
                    OsEvent::SyscallEnter { pid: p, call, .. } if *p == pid => {
                        call_start = Some((r.at, *call));
                    }
                    OsEvent::SyscallExit { pid: p, call, .. } if *p == pid => {
                        if let Some((s, c)) = call_start.take() {
                            debug_assert_eq!(c, *call);
                            if r.at >= origin {
                                spans.push(Span {
                                    start: s.max(origin),
                                    end: r.at,
                                    label: c.to_string(),
                                    kind: SpanKind::Exec,
                                });
                            }
                        }
                    }
                    OsEvent::SemEnqueue { pid: p, .. } if *p == pid => {
                        block_start = Some(r.at);
                    }
                    OsEvent::SemAcquire { pid: p, .. } if *p == pid => {
                        if let Some(s) = block_start.take() {
                            if r.at > s && r.at >= origin {
                                spans.push(Span {
                                    start: s.max(origin),
                                    end: r.at,
                                    label: "blocked".into(),
                                    kind: SpanKind::Blocked,
                                });
                            }
                        }
                    }
                    OsEvent::Trap { pid: p, .. } if *p == pid && r.at >= origin => {
                        spans.push(Span {
                            start: r.at,
                            end: r.at,
                            label: "trap".into(),
                            kind: SpanKind::Trap,
                        });
                    }
                    _ => {}
                }
            }
            // An unclosed call at the window edge still gets drawn.
            if let Some((s, c)) = call_start {
                if s <= end {
                    spans.push(Span {
                        start: s.max(origin),
                        end,
                        label: c.to_string(),
                        kind: SpanKind::Exec,
                    });
                }
            }
            spans.sort_by_key(|s| s.start);
            lanes.push(Lane {
                label: label.to_string(),
                spans,
            });
        }
        Timeline {
            lanes,
            origin,
            end,
            dropped: trace.dropped(),
        }
    }

    /// Converts the timeline into [`crate::svg::BarRow`]s (µs relative to
    /// the chart origin), for SVG rendering of Figure 8/10-style charts.
    pub fn bar_rows(&self) -> Vec<crate::svg::BarRow> {
        self.lanes
            .iter()
            .map(|lane| crate::svg::BarRow {
                label: lane.label.clone(),
                spans: lane
                    .spans
                    .iter()
                    .map(|s| {
                        let color = match s.kind {
                            SpanKind::Exec => match s.label.as_str() {
                                "stat" | "lstat" | "access" => "#999999",
                                "unlink" => "#d62728",
                                "symlink" => "#1f77b4",
                                "rename" => "#2ca02c",
                                "chmod" | "chown" => "#ff7f0e",
                                _ => "#bbbbbb",
                            },
                            SpanKind::Blocked => "#f2d0d0",
                            SpanKind::Trap => "#000000",
                        };
                        (
                            (s.start - self.origin).as_micros_f64(),
                            (s.end - self.origin).as_micros_f64(),
                            color.to_string(),
                            s.label.clone(),
                        )
                    })
                    .collect(),
            })
            .collect()
    }

    /// Renders the timeline as fixed-width ASCII art, paper-figure style.
    ///
    /// Each lane is two rows: a bar row (`=` executing, `~` blocked, `!`
    /// trap) and a label row naming each span at its start column. A
    /// bounded trace that evicted records gets a leading warning line.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(20);
        let span_cols = |s: &Span| -> (usize, usize) {
            let total = (self.end - self.origin).as_nanos() as f64;
            let a = (s.start - self.origin).as_nanos() as f64 / total;
            let b = (s.end - self.origin).as_nanos() as f64 / total;
            let c0 = (a * (width - 1) as f64).round() as usize;
            let c1 = ((b * (width - 1) as f64).round() as usize).max(c0);
            (c0.min(width - 1), c1.min(width - 1))
        };
        let name_width = self
            .lanes
            .iter()
            .map(|l| l.label.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "[incomplete: {} earliest trace records evicted by the bounded buffer]\n",
                self.dropped
            ));
        }
        for lane in &self.lanes {
            let mut bar = vec![b' '; width];
            let mut labels = vec![b' '; width];
            for span in &lane.spans {
                let (c0, c1) = span_cols(span);
                let ch = match span.kind {
                    SpanKind::Exec => b'=',
                    SpanKind::Blocked => b'~',
                    SpanKind::Trap => b'!',
                };
                if span.kind == SpanKind::Trap {
                    bar[c0] = b'!';
                } else {
                    bar[c0] = b'|';
                    for cell in bar.iter_mut().take(c1).skip(c0 + 1) {
                        // Blocked marks override exec fill so waits stay
                        // visible inside a syscall bar.
                        if *cell == b' ' || (ch == b'~' && *cell == b'=') {
                            *cell = ch;
                        }
                    }
                    if c1 > c0 {
                        bar[c1] = b'|';
                    }
                }
                // Stamp the label if it fits without clobbering another.
                let text = span.label.as_bytes();
                let end_col = (c0 + text.len()).min(width);
                if labels[c0..end_col].iter().all(|&b| b == b' ') {
                    labels[c0..end_col].copy_from_slice(&text[..end_col - c0]);
                }
            }
            out.push_str(&format!(
                "{:>name_width$} {}\n",
                lane.label,
                String::from_utf8(bar).expect("ascii")
            ));
            out.push_str(&format!(
                "{:>name_width$} {}\n",
                "",
                String::from_utf8(labels).expect("ascii")
            ));
        }
        // Time axis.
        let mut axis = format!("{:>name_width$} ", "");
        let t0 = self.origin.as_micros_f64();
        let t1 = self.end.as_micros_f64();
        axis.push_str(&format!(
            "{:<10} {:^w$} {:>10}",
            format!("{t0:.0}us"),
            format!("{:.0}us", (t0 + t1) / 2.0),
            format!("{t1:.0}us"),
            w = width.saturating_sub(22)
        ));
        out.push_str(&axis);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tocttou_workloads::scenario::Scenario;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn builds_lanes_from_real_trace() {
        let s = Scenario::gedit_smp(2048);
        let (_, h) = s.run_traced(31_003);
        let end = h.kernel.now();
        let tl = Timeline::from_trace(
            h.kernel.trace(),
            &[(h.victim, "gedit"), (h.attackers[0], "attacker")],
            SimTime::ZERO,
            end,
        );
        assert_eq!(tl.lanes.len(), 2);
        assert!(!tl.lanes[0].spans.is_empty(), "victim has syscalls");
        assert!(!tl.lanes[1].spans.is_empty(), "attacker has syscalls");
        // Victim lane contains the save sequence.
        let labels: Vec<&str> = tl.lanes[0].spans.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"rename"), "{labels:?}");
        assert!(labels.contains(&"chown"), "{labels:?}");
    }

    #[test]
    fn render_has_one_bar_and_label_row_per_lane_plus_axis() {
        let s = Scenario::gedit_smp(2048);
        let (_, h) = s.run_traced(31_003);
        let tl = Timeline::from_trace(
            h.kernel.trace(),
            &[(h.victim, "gedit"), (h.attackers[0], "attacker")],
            SimTime::ZERO,
            h.kernel.now(),
        );
        let text = tl.render_ascii(100);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 * 2 + 1);
        assert!(text.contains("us"), "axis labelled");
        assert!(text.contains('='), "bars drawn");
    }

    #[test]
    fn spans_clip_to_window() {
        let s = Scenario::gedit_smp(2048);
        let (_, h) = s.run_traced(31_003);
        let tl = Timeline::from_trace(h.kernel.trace(), &[(h.victim, "gedit")], t(100), t(200));
        for span in &tl.lanes[0].spans {
            assert!(span.start >= t(100));
            assert!(span.end <= h.kernel.now());
        }
    }

    #[test]
    fn bounded_trace_drops_are_surfaced() {
        let mut trace: Trace<OsEvent> = Trace::bounded(4);
        for i in 0..10 {
            trace.record(t(i + 1), OsEvent::Wake { pid: Pid(0) });
        }
        let tl = Timeline::from_trace(&trace, &[(Pid(0), "p")], SimTime::ZERO, t(20));
        assert_eq!(tl.dropped, 6);
        let text = tl.render_ascii(40);
        assert!(
            text.starts_with("[incomplete: 6 earliest trace records"),
            "{text}"
        );

        let unbounded: Trace<OsEvent> = Trace::default();
        let tl = Timeline::from_trace(&unbounded, &[], SimTime::ZERO, t(20));
        assert_eq!(tl.dropped, 0);
        assert!(!tl.render_ascii(40).contains("incomplete"));
    }

    #[test]
    #[should_panic(expected = "empty timeline window")]
    fn empty_window_panics() {
        let s = Scenario::gedit_smp(2048);
        let (_, h) = s.run_traced(31_003);
        let _ = Timeline::from_trace(h.kernel.trace(), &[], t(5), t(5));
    }
}
