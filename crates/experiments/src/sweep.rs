//! The grid-parallel sweep engine.
//!
//! [`run_sweep`] runs a whole parameter [`Grid`] — every figure is one —
//! through a single shared worker pool, instead of calling
//! [`run_mc`](crate::monte_carlo::run_mc) once per grid point. Three
//! things make it the fast path:
//!
//! * **Template built once, snapshot/forked per point.** The base
//!   filesystem image (directories, `/etc/passwd`, the attack directory)
//!   depends on no swept parameter, so it is populated a single time and
//!   each point's template is a cheap clone-plus-document fork
//!   ([`Scenario::template_vfs_from_base`]) — state-identical to a full
//!   per-point build, as the fork-equivalence tests assert.
//! * **One worker pool for the whole grid.** `(point × round-block)` work
//!   items feed `jobs` long-lived workers through a shared atomic cursor,
//!   so threads never drain at point boundaries and each worker's
//!   recycled [`KernelPool`] stays warm across points. The per-point
//!   `run_mc` loop, by contrast, spawns and joins a fresh pool of threads
//!   — and cold kernel pools — for every point.
//! * **Bit-identical outcomes anyway.** Each point's rounds still fold in
//!   round order and its kernel metrics still merge through pure integer
//!   accumulation ([`PointAcc`] centralizes both rules), so every
//!   per-point [`McOutcome`] is byte-for-byte what a standalone
//!   `run_mc(point.scenario(), McConfig { base_seed: base + salt, .. })`
//!   returns — at any `jobs` value on either side. The jobs-ladder and
//!   per-point identity tests in `tests/sweep_determinism.rs` and the
//!   `sweep_throughput` bench row hold this line.
//!
//! Workers drain their pool's retained metrics and window forensics at
//! work-item boundaries ([`KernelPool::drain_metrics`],
//! [`KernelPool::drain_forensics`]), which is what lets one pool serve
//! many points without cross-contaminating their folds.

use crate::grid::{Grid, PointDesc};
use crate::monte_carlo::{effective_jobs, run_one_round, McOutcome, PointAcc, RoundBoot};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use tocttou_os::forensics::ForensicsSnapshot;
use tocttou_os::kernel::{Checkpoint, KernelPool};
use tocttou_os::metrics::MetricsSnapshot;
use tocttou_sim::rng::seed_block;
use tocttou_workloads::scenario::Scenario;

use crate::extract::WindowKind;
use crate::monte_carlo::window_kind_of;

/// Options for one sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The parameter grid to cover.
    pub grid: Grid,
    /// Monte-Carlo rounds per grid point.
    pub rounds: u64,
    /// Sweep-level base seed; point *p* runs rounds at
    /// `base_seed + p.seed_salt + i`.
    pub base_seed: u64,
    /// Whether to trace rounds and extract L/D at every point.
    pub collect_ld: bool,
    /// Worker threads shared by the whole grid (`0` = auto, `1` =
    /// serial). Results are bit-identical for every value.
    pub jobs: usize,
    /// Cold-boot every round instead of resuming each point's warm
    /// checkpoint — the oracle path, byte-identical to the warm default
    /// (see [`McConfig::cold`](crate::monte_carlo::McConfig::cold)).
    pub cold: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            grid: Grid::default(),
            rounds: 200,
            base_seed: 0x7061_7065,
            collect_ld: false,
            jobs: 1,
            cold: false,
        }
    }
}

/// One grid point's result.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Which point this is.
    pub point: PointDesc,
    /// The point's Monte-Carlo outcome — byte-identical to a standalone
    /// [`run_mc`](crate::monte_carlo::run_mc) call on
    /// `point.scenario()` with base seed `sweep base + salt`.
    pub outcome: McOutcome,
}

/// The whole sweep's results.
///
/// Deliberately excludes the `jobs` knob: serialized outcomes are compared
/// across the jobs ladder byte for byte, so only result-bearing fields
/// belong here.
#[derive(Debug, Clone, Serialize)]
pub struct SweepOutcome {
    /// Rounds per point.
    pub rounds_per_point: u64,
    /// The sweep-level base seed.
    pub base_seed: u64,
    /// Whether L/D extraction was on.
    pub collect_ld: bool,
    /// Per-point results, in grid order.
    pub points: Vec<SweepPoint>,
}

/// One `(grid point, round block)` unit of work.
struct WorkItem {
    point: usize,
    start: u64,
    end: u64,
}

/// A finished work item, tagged with its item index for deterministic
/// reassembly.
struct ItemResult {
    item: usize,
    point: usize,
    obs: Vec<crate::monte_carlo::RoundObs>,
    metrics: MetricsSnapshot,
    forensics: ForensicsSnapshot,
}

/// Runs every grid point's Monte-Carlo batch on one shared worker pool.
///
/// See the [module docs](self) for the template-fork and scheduling
/// design and the byte-identity guarantee.
pub fn run_sweep(cfg: &SweepConfig) -> SweepOutcome {
    let points = &cfg.grid.points;
    let scenarios: Vec<Scenario> = points.iter().map(|p| p.scenario()).collect();
    let kinds: Vec<WindowKind> = scenarios.iter().map(window_kind_of).collect();

    // Build the swept-parameter-independent base image once and fork it
    // per point. (All grid points share the default layout and attacker
    // identity — `fork_matches_full_template_build` pins the equivalence.)
    let templates: Vec<tocttou_os::vfs::Vfs> = match scenarios.first() {
        None => Vec::new(),
        Some(first) => {
            let base = first.base_vfs();
            scenarios
                .iter()
                .map(|s| s.template_vfs_from_base(&base))
                .collect()
        }
    };

    // One warm checkpoint per point (unless the cold oracle is requested):
    // each point's seed-independent prefix — boot, defense, forked
    // template — is simulated once here and restored per round. The
    // checkpoints are `Send + Sync`, so every worker resumes from the same
    // shared instances.
    let checkpoints: Vec<Checkpoint> = if cfg.cold {
        Vec::new()
    } else {
        scenarios
            .iter()
            .zip(&templates)
            .map(|(s, t)| s.round_checkpoint(t))
            .collect()
    };
    let boots: Vec<RoundBoot<'_>> = if cfg.cold {
        templates.iter().map(RoundBoot::Cold).collect()
    } else {
        checkpoints.iter().map(RoundBoot::Warm).collect()
    };

    let total_rounds = cfg.rounds.saturating_mul(points.len() as u64);
    let jobs = effective_jobs(cfg.jobs, total_rounds);

    let mut accs: Vec<PointAcc> = points.iter().map(|_| PointAcc::new()).collect();

    if jobs <= 1 {
        // Serial: one pool serves every point; metrics and forensics
        // drain at point boundaries so each fold starts from zero like a
        // fresh pool.
        let mut pool = KernelPool::new().retain_metrics();
        for (p, scenario) in scenarios.iter().enumerate() {
            let point_seed = cfg.base_seed.wrapping_add(points[p].seed_salt);
            for seed in seed_block(point_seed, 0, cfg.rounds) {
                let (obs, returned) =
                    run_one_round(scenario, boots[p], pool, seed, kinds[p], cfg.collect_ld);
                pool = returned;
                accs[p].fold(obs);
            }
            accs[p].merge_metrics(&pool.drain_metrics());
            accs[p].merge_forensics(&pool.drain_forensics());
        }
    } else {
        // Same per-point block partition run_mc uses, flattened across
        // the grid; identity doesn't depend on the partition (metrics
        // merge is order-free, observations refold in round order below),
        // but matching it keeps block sizes familiar.
        let block = cfg.rounds.div_ceil(jobs as u64);
        let mut items = Vec::new();
        for p in 0..points.len() {
            let mut start = 0;
            while start < cfg.rounds {
                let end = (start + block).min(cfg.rounds);
                items.push(WorkItem {
                    point: p,
                    start,
                    end,
                });
                start = end;
            }
        }

        // Never spawn more workers than there are items to claim: a tiny
        // `--rounds` grid can yield fewer items than `jobs` (the block
        // partition caps items per point), and a worker with no item to
        // claim would be spawned only to exit.
        let workers = jobs.min(items.len());
        let next = AtomicUsize::new(0);
        let results: Vec<ItemResult> = std::thread::scope(|scope| {
            let (items, scenarios, boots, kinds, next) =
                (&items, &scenarios, &boots, &kinds, &next);
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        // One long-lived recycled pool per worker, shared
                        // across every item (and so every point) it claims.
                        let mut pool = KernelPool::new().retain_metrics();
                        let mut done = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(idx) else { break };
                            let p = item.point;
                            let point_seed = cfg.base_seed.wrapping_add(points[p].seed_salt);
                            let mut obs = Vec::with_capacity((item.end - item.start) as usize);
                            for seed in seed_block(point_seed, item.start, item.end) {
                                let (o, returned) = run_one_round(
                                    &scenarios[p],
                                    boots[p],
                                    pool,
                                    seed,
                                    kinds[p],
                                    cfg.collect_ld,
                                );
                                pool = returned;
                                obs.push(o);
                            }
                            done.push(ItemResult {
                                item: idx,
                                point: p,
                                obs,
                                metrics: pool.drain_metrics(),
                                forensics: pool.drain_forensics(),
                            });
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });

        // Reassemble deterministically: items were created in ascending
        // round order per point, so folding in item order restores each
        // point's round order no matter which worker ran what when.
        let mut slots: Vec<Option<ItemResult>> = (0..items.len()).map(|_| None).collect();
        for r in results {
            let idx = r.item;
            slots[idx] = Some(r);
        }
        for slot in slots {
            let r = slot.expect("every work item completes");
            accs[r.point].merge_metrics(&r.metrics);
            accs[r.point].merge_forensics(&r.forensics);
            for o in r.obs {
                accs[r.point].fold(o);
            }
        }
    }

    SweepOutcome {
        rounds_per_point: cfg.rounds,
        base_seed: cfg.base_seed,
        collect_ld: cfg.collect_ld,
        points: accs
            .into_iter()
            .zip(&scenarios)
            .zip(points)
            .map(|((acc, scenario), point)| SweepPoint {
                point: point.describe(),
                outcome: acc.finish(scenario),
            })
            .collect(),
    }
}

impl std::fmt::Display for SweepOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Sweep — {} points × {} rounds (base seed {:#x})",
            self.points.len(),
            self.rounds_per_point,
            self.base_seed
        )?;
        for p in &self.points {
            writeln!(f, "  {}", p.outcome)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Family, GridPoint};
    use crate::monte_carlo::{run_mc, McConfig};

    fn small_grid() -> Grid {
        Grid::from_points(vec![
            GridPoint::new(Family::ViSmp, 20 * 1024).with_salt(3),
            GridPoint::new(Family::GeditSmp, 2048).with_salt(7),
            GridPoint::new(Family::GeditSmp, 2048)
                .with_d_scale(0.5)
                .with_salt(11),
            GridPoint::new(Family::HardlinkSwap, 20 * 1024).with_salt(13),
        ])
    }

    #[test]
    fn sweep_points_match_standalone_run_mc() {
        let cfg = SweepConfig {
            grid: small_grid(),
            rounds: 8,
            base_seed: 0xABCD,
            collect_ld: true,
            jobs: 1,
            cold: false,
        };
        let sweep = run_sweep(&cfg);
        assert_eq!(sweep.points.len(), 4);
        for (point, sp) in cfg.grid.points.iter().zip(&sweep.points) {
            let standalone = run_mc(
                &point.scenario(),
                &McConfig {
                    rounds: cfg.rounds,
                    base_seed: cfg.base_seed + point.seed_salt,
                    collect_ld: cfg.collect_ld,
                    jobs: 1,
                    cold: false,
                },
            );
            assert_eq!(
                serde_json::to_string(&sp.outcome).unwrap(),
                serde_json::to_string(&standalone).unwrap(),
                "{}: sweep point diverged from run_mc",
                standalone.scenario
            );
        }
    }

    #[test]
    fn sweep_is_bit_identical_across_jobs() {
        let base = SweepConfig {
            grid: small_grid(),
            rounds: 9,
            base_seed: 91,
            collect_ld: false,
            jobs: 1,
            cold: false,
        };
        let serial = serde_json::to_string(&run_sweep(&base)).unwrap();
        for jobs in [2, 3, 5] {
            let par = run_sweep(&SweepConfig {
                jobs,
                ..base.clone()
            });
            assert_eq!(
                serial,
                serde_json::to_string(&par).unwrap(),
                "jobs={jobs} diverged"
            );
        }
    }

    #[test]
    fn empty_grid_yields_empty_outcome() {
        let out = run_sweep(&SweepConfig {
            grid: Grid::default(),
            rounds: 5,
            base_seed: 1,
            collect_ld: false,
            jobs: 4,
            cold: false,
        });
        assert!(out.points.is_empty());
    }

    #[test]
    fn display_lists_every_point() {
        let out = run_sweep(&SweepConfig {
            grid: Grid::pipelined_pair(512),
            rounds: 2,
            base_seed: 5,
            collect_ld: false,
            jobs: 2,
            cold: false,
        });
        let text = out.to_string();
        assert!(text.contains("2 points"), "{text}");
        assert!(text.contains("pipelined-512B"), "{text}");
    }
}
