//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes the workspace actually contains, without a parser dependency:
//!
//! * structs with named fields → JSON objects (declaration order);
//! * newtype (single-field tuple) structs → transparent;
//! * wider tuple structs → arrays;
//! * unit structs → `null`;
//! * enums whose variants are all fieldless → the variant name as a string.
//!
//! `#[serde(...)]` helper attributes are accepted and ignored, except that
//! `#[serde(transparent)]` matches the built-in newtype behaviour. Generic
//! types and data-carrying enums are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitStruct,
    FieldlessEnum { variants: Vec<String> },
}

struct Item {
    name: String,
    shape: Shape,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .expect("compile_error tokens")
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().expect("generated impl tokens")
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes_and_visibility(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "cannot derive for generic type `{name}`: the vendored serde_derive supports only non-generic items"
        ));
    }

    if kind == "struct" {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::NamedStruct {
                    fields: parse_named_fields(g.stream())?,
                },
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                shape: Shape::TupleStruct {
                    arity: count_tuple_fields(g.stream()),
                },
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                shape: Shape::UnitStruct,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        }
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name: name.clone(),
                shape: Shape::FieldlessEnum {
                    variants: parse_fieldless_variants(&name, g.stream())?,
                },
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        }
    }
}

/// Advances `pos` past outer attributes (`#[...]`) and a visibility
/// qualifier (`pub`, `pub(...)`).
fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        let Some(TokenTree::Ident(id)) = tokens.get(pos) else {
            return Err(format!("expected field name, found {:?}", tokens.get(pos)));
        };
        fields.push(id.to_string());
        pos += 1;
        if !matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err("expected `:` after field name".into());
        }
        pos += 1;
        // Skip the type: everything up to a top-level comma. Generic
        // argument lists are skipped by angle-bracket depth counting.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(pos) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            pos += 1;
        }
        pos += 1; // past the comma (or the end)
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not introduce a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

/// Variant names of a fieldless enum body.
fn parse_fieldless_variants(enum_name: &str, body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        let Some(TokenTree::Ident(id)) = tokens.get(pos) else {
            return Err(format!(
                "expected variant name in `{enum_name}`, found {:?}",
                tokens.get(pos)
            ));
        };
        variants.push(id.to_string());
        pos += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Group(_))) {
            return Err(format!(
                "cannot derive for `{enum_name}`: variant `{}` carries data; the vendored serde_derive supports only fieldless enums",
                variants.last().expect("just pushed")
            ));
        }
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        while pos < tokens.len()
            && !matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',')
        {
            pos += 1;
        }
        pos += 1; // past the comma (or the end)
    }
    Ok(variants)
}

// ---- code generation -------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { arity: 1 } => {
            "::serde::Serialize::serialize_value(&self.0)".to_string()
        }
        Shape::TupleStruct { arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::FieldlessEnum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?}))"
                    )
                })
                .collect();
            format!("match *self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct { fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(value.get({f:?}).ok_or_else(|| ::serde::DeError::msg(concat!(\"missing field `\", {f:?}, \"`\")))?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { arity: 1 } => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(value)?))"
        ),
        Shape::TupleStruct { arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {arity} => \
                         ::std::result::Result::Ok({name}({inits})),\n\
                     _ => ::std::result::Result::Err(::serde::DeError::msg(\"expected array of length {arity}\")),\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::FieldlessEnum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {},\n\
                         other => ::std::result::Result::Err(::serde::DeError::msg(format!(\"unknown variant `{{other}}`\"))),\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::DeError::msg(\"expected string for enum\")),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
