//! # tocttou — reproduction of "Multiprocessors May Reduce System
//! Dependability under File-Based Race Condition Attacks" (DSN 2007)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the probabilistic model (Equation 1, the L/D
//!   laxity formula), TOCTTOU pair taxonomy, statistics;
//! * [`os`] — a deterministic multiprocessor Unix simulator
//!   (scheduler, FIFO semaphores, VFS, syscall engine, page-fault traps,
//!   background kernel activity);
//! * [`workloads`] — vi/gedit victims and the paper's
//!   three attacker programs, bundled into named scenarios;
//! * [`experiments`] — Monte-Carlo reproduction of
//!   every table and figure, plus paper-style ASCII event timelines;
//! * [`lab`] — a native real-syscall race laboratory.
//!
//! # Quickstart
//!
//! ```
//! use tocttou::workloads::Scenario;
//! use tocttou::core::model::{MeasuredUs, MultiprocessorScenario};
//!
//! // Simulate one Table 2 round (gedit on the 2-way SMP)...
//! let round = Scenario::gedit_smp(2048).run_round(7);
//!
//! // ...and ask the model what it expects for the measured L/D regime.
//! let model = MultiprocessorScenario {
//!     l: MeasuredUs::new(11.6, 3.89),
//!     d: MeasuredUs::new(32.7, 2.83),
//!     p_suspended: 0.0,
//!     p_interference: 0.0,
//! };
//! assert!(model.success_probability().value() > 0.0);
//! assert!(round.victim_exited);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tocttou_core as core;
pub use tocttou_experiments as experiments;
pub use tocttou_lab as lab;
pub use tocttou_os as os;
pub use tocttou_sim as sim;
pub use tocttou_workloads as workloads;
