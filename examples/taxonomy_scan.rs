//! Enumerate the TOCTTOU pair taxonomy — the paper's "224 kinds of
//! TOCTTOU vulnerabilities" for Linux — and evaluate the model across the
//! laxity spectrum for a generic pair.
//!
//! ```text
//! cargo run --release --example taxonomy_scan
//! ```

use tocttou::core::model::{classify, success_rate, RaceRegime};
use tocttou::core::taxonomy::{enumerate_pairs, FsCall, TocttouPair};

fn main() {
    let pairs = enumerate_pairs();
    println!(
        "TOCTTOU pair taxonomy: {} check calls × {} use calls = {} pairs\n",
        FsCall::CHECK_SET.len(),
        FsCall::USE_SET.len(),
        pairs.len()
    );

    println!("check set: {}", name_list(&FsCall::CHECK_SET));
    println!("use set:   {}\n", name_list(&FsCall::USE_SET));

    for (pair, what) in [
        (TocttouPair::vi(), "vi 6.1 saving a file (Figure 1)"),
        (TocttouPair::gedit(), "gedit 2.8.3 saving a file (Figure 3)"),
        (TocttouPair::sendmail(), "classic sendmail mailbox append"),
    ] {
        println!("{pair:<18} — {what}");
    }

    println!("\nLaxity spectrum for an attacker with D = 33 µs:");
    println!("{:>10} {:>12} {:>12}", "L (µs)", "regime", "P(success)");
    for l in [-20.0, 0.0, 5.0, 11.6, 25.0, 33.0, 100.0, 17_000.0] {
        let regime = classify(l, 33.0);
        let p = success_rate(l, 33.0);
        let regime_name = match regime {
            RaceRegime::Hopeless => "hopeless",
            RaceRegime::Contended => "contended",
            RaceRegime::Dominated => "dominated",
        };
        println!("{l:>10.1} {regime_name:>12} {:>11.1}%", p * 100.0);
    }
    println!(
        "\nAny pair whose victim leaves L > 0 is exploitable on a multiprocessor;\n\
         with L ≥ D the attack is statistically certain (formula (1), Section 3.4)."
    );
}

fn name_list(calls: &[FsCall]) -> String {
    calls
        .iter()
        .map(|c| c.name())
        .collect::<Vec<_>>()
        .join(", ")
}
