//! The vi file-size sweep: Figure 6 (uniprocessor) and Figure 7 (SMP L/D)
//! in one run.
//!
//! ```text
//! cargo run --release --example vi_attack_sweep [rounds]
//! ```

use tocttou::experiments::figures::{fig6, fig7};

fn main() {
    let rounds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    println!("running Figure 6 (uniprocessor sweep, {rounds} rounds/size)...\n");
    let out6 = fig6::run(&fig6::Config {
        sizes_kb: (1..=10).map(|i| i * 100).collect(),
        rounds,
        seed: 0xF166,
        jobs: 0, // use every core for the sweep
        cold: false,
    });
    println!("{out6}");

    println!("\nrunning Figure 7 (SMP L/D sweep)...\n");
    let out7 = fig7::run(&fig7::Config {
        sizes_kb: vec![20, 100, 200, 400, 600, 800, 1000],
        rounds: (rounds / 10).max(3),
        seed: 0xF167,
        jobs: 0, // use every core for the sweep
        cold: false,
    });
    println!("{out7}");

    println!(
        "Read-off: on one CPU the success rate tracks window/timeslice (a few\n\
         percent); on the SMP, L >> D for every size, so the attack always lands."
    );
}
