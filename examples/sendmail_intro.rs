//! The paper's opening story, end to end: sendmail appends an attacker's
//! forged entry to /etc/passwd.
//!
//! ```text
//! cargo run --release --example sendmail_intro
//! ```

use tocttou::core::stats::SuccessCounter;
use tocttou::os::prelude::*;
use tocttou::sim::time::SimTime;
use tocttou::workloads::sendmail::{SendmailConfig, SendmailDeliver};

fn setup(seed: u64) -> Kernel {
    let mut k = Kernel::new(MachineSpec::smp_xeon().quiet(), seed);
    let root = InodeMeta {
        uid: Uid::ROOT,
        gid: Gid::ROOT,
        mode: 0o755,
    };
    let user = InodeMeta {
        uid: Uid(1000),
        gid: Gid(1000),
        mode: 0o755,
    };
    k.vfs_mut().mkdir("/etc", root).unwrap();
    let pw = k
        .vfs_mut()
        .create_file(
            "/etc/passwd",
            InodeMeta {
                uid: Uid::ROOT,
                gid: Gid::ROOT,
                mode: 0o644,
            },
        )
        .unwrap();
    k.vfs_mut().append(pw, 1000).unwrap();
    k.vfs_mut().mkdir("/var", root).unwrap();
    k.vfs_mut().mkdir("/var/mail", user).unwrap();
    let mb = k
        .vfs_mut()
        .create_file(
            "/var/mail/attacker",
            InodeMeta {
                uid: Uid(1000),
                gid: Gid(1000),
                mode: 0o600,
            },
        )
        .unwrap();
    k.vfs_mut().append(mb, 100).unwrap();
    k
}

/// The mailbox owner flips its mailbox between a regular file and a symlink
/// to /etc/passwd, hoping a delivery's `<lstat, open>` window lands on the
/// symlink phase.
struct Flipper {
    phase: u8,
}

impl ProcessLogic for Flipper {
    fn next_action(&mut self, _ctx: &LogicCtx, _last: Option<&SyscallResult>) -> Action {
        let mailbox: std::sync::Arc<str> = "/var/mail/attacker".into();
        let action = match self.phase % 4 {
            0 | 2 => Action::Syscall(SyscallRequest::Unlink { path: mailbox }),
            1 => Action::Syscall(SyscallRequest::Symlink {
                target: "/etc/passwd".into(),
                linkpath: mailbox,
            }),
            _ => Action::Syscall(SyscallRequest::OpenCreate { path: mailbox }),
        };
        self.phase = self.phase.wrapping_add(1);
        action
    }
}

fn main() {
    println!(
        "sendmail's check: the mailbox must not be a symlink. The check is\n\
         correct — a pre-planted link is refused — but it races the append.\n"
    );
    let deliveries = 300u64;
    let mut outcomes = SuccessCounter::new();
    let mut refused = 0;
    for seed in 0..deliveries {
        let mut k = setup(seed);
        let cfg = SendmailConfig::new("/var/mail/attacker");
        let vpid = k.spawn(
            "sendmail",
            Uid::ROOT,
            Gid::ROOT,
            true,
            Box::new(SendmailDeliver::new(cfg, seed)),
        );
        k.spawn(
            "mailbox-owner",
            Uid(1000),
            Gid(1000),
            true,
            Box::new(Flipper { phase: 0 }),
        );
        k.run_until_exit(vpid, SimTime::from_millis(100));
        let grew = k.vfs().stat("/etc/passwd").unwrap().size > 1000;
        outcomes.record(grew);
        if !grew
            && k.vfs()
                .stat("/var/mail/attacker")
                .map(|m| m.size)
                .unwrap_or(100)
                == 100
        {
            refused += 1;
        }
    }
    println!("over {deliveries} deliveries on the SMP: {outcomes} forged appends to /etc/passwd");
    println!("({refused} deliveries were refused or missed by the flip)");
    println!(
        "\nA forged line in /etc/passwd is a root account — the 30-year-old\n\
         attack the paper opens with, now practical because the attacker has\n\
         its own CPU to flip the link on."
    );
}
