//! Quickstart: predict and then observe the paper's headline result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. Ask the probabilistic model (Equation 1 / formula (1)) for the
//!    expected success rate of the vi attack on a uniprocessor vs. an SMP.
//! 2. Run the corresponding simulated experiments and compare.

use tocttou::core::model::{
    DependabilityDelta, MeasuredUs, MultiprocessorScenario, UniprocessorScenario,
};
use tocttou::core::stats::SuccessCounter;
use tocttou::workloads::Scenario;

fn main() {
    let file_kb = 500u64;
    println!("== vi attack, {file_kb} KB file ==\n");

    // --- model -------------------------------------------------------------
    // vi's window is dominated by the file write: ~17 µs/KB on the paper's
    // SMP-era hardware, inside a 100 ms scheduler time slice.
    let window_us = 17.0 * file_kb as f64 + 100.0;
    let uni = UniprocessorScenario {
        window_us,
        timeslice_us: 100_000.0,
        p_block: 0.0,
        p_attacker_ready: 1.0,
        p_attack_completes: 1.0,
    };
    let smp = MultiprocessorScenario {
        l: MeasuredUs::new(window_us, 50.0),
        d: MeasuredUs::new(41.1, 2.73), // Table 1's attacker
        p_suspended: 0.0,
        p_interference: 0.04,
    };
    let delta = DependabilityDelta::compare(&uni, &smp);
    println!(
        "model:      uniprocessor {:>5.1}%   multiprocessor {:>5.1}%   (risk x{:.0})",
        delta.uniprocessor * 100.0,
        delta.multiprocessor * 100.0,
        delta.risk_factor()
    );

    // --- simulation ----------------------------------------------------------
    let rounds = 100u64;
    let mut uni_obs = SuccessCounter::new();
    let mut smp_obs = SuccessCounter::new();
    let uni_scenario = Scenario::vi_uniprocessor(file_kb * 1024);
    let smp_scenario = Scenario::vi_smp(file_kb * 1024);
    for i in 0..rounds {
        uni_obs.record(uni_scenario.run_round(1000 + i).success);
        smp_obs.record(smp_scenario.run_round(2000 + i).success);
    }
    println!(
        "simulated:  uniprocessor {:>5.1}%   multiprocessor {:>5.1}%   ({rounds} rounds each)",
        uni_obs.rate() * 100.0,
        smp_obs.rate() * 100.0,
    );
    println!("\npaper:      uniprocessor ~9%      multiprocessor 100%   (Figure 6 / Section 5)");
    println!(
        "\nThe same attacker program gains a dedicated CPU and the race stops\n\
         being a lottery — \"multiprocessors may reduce system dependability\"."
    );
}
