//! Run the native (real-syscall) TOCTTOU laboratory on this machine.
//!
//! ```text
//! cargo run --release --example native_race_lab [rounds] [file_kb]
//! ```
//!
//! Requires root for the full effect (the victim's chown must be able to
//! give files away, as in the paper's scenario); everything happens inside
//! a scratch directory in `$TMPDIR` — the real `/etc/passwd` is never
//! touched.

use std::time::Duration;
use tocttou::lab::measure::{measure_detection_period, measure_syscall_costs, scratch_dir};
use tocttou::lab::{is_root, online_cpus, run_lab, LabConfig, NativeAttacker, NativeVictim};

fn main() {
    let rounds: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let file_kb: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);

    println!(
        "host: {} CPU(s), root = {} — {}",
        online_cpus(),
        is_root(),
        if online_cpus() >= 2 {
            "multiprocessor regime (the paper's SMP case)"
        } else {
            "uniprocessor regime (the paper's baseline case)"
        }
    );
    if !is_root() {
        println!("note: without root the victim's chown cannot give files away;");
        println!("      the lab still runs but the window never opens.");
    }

    // How this host's syscall costs compare with the 2007 calibration.
    let dir = scratch_dir("example");
    if let Ok(costs) = measure_syscall_costs(&dir, 200) {
        println!("\n{costs}");
    }
    if let Ok(d) = measure_detection_period(&dir, 2_000) {
        println!("native detection period D ≈ {d:.2} µs (paper's SMP attacker: 41 µs)\n");
    }
    std::fs::remove_dir_all(&dir).ok();

    for (victim, attacker, label) in [
        (NativeVictim::Vi, NativeAttacker::V1, "vi + attacker v1"),
        (
            NativeVictim::Gedit,
            NativeAttacker::V2,
            "gedit + attacker v2",
        ),
    ] {
        let report = run_lab(&LabConfig {
            victim,
            attacker,
            file_size: file_kb * 1024,
            rounds,
            round_timeout: Duration::from_secs(1),
            ..LabConfig::default()
        })
        .expect("lab I/O");
        println!("{label}: {report}");
    }
}
