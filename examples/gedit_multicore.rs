//! The Section 6.2 story: why attacker v1 fails and v2 succeeds on the
//! multi-core, told with event timelines (Figures 8 and 10).
//!
//! ```text
//! cargo run --release --example gedit_multicore
//! ```

use tocttou::core::stats::SuccessCounter;
use tocttou::experiments::figures::{fig10, fig8};
use tocttou::workloads::Scenario;

fn main() {
    println!("== gedit on the multi-core: attacker v1 vs v2 ==\n");

    // Success rates over a quick batch.
    let rounds = 100u64;
    let mut v1 = SuccessCounter::new();
    let mut v2 = SuccessCounter::new();
    let s1 = Scenario::gedit_multicore_v1(2048);
    let s2 = Scenario::gedit_multicore_v2(2048);
    for i in 0..rounds {
        v1.record(s1.run_round(500 + i).success);
        v2.record(s2.run_round(900 + i).success);
    }
    println!("attacker v1 (Figure 4, cold unlink page): {v1}");
    println!("attacker v2 (Figure 9, pre-warmed):       {v2}");
    println!("paper: v1 \"almost no success\", v2 \"many successes\"\n");

    // Timelines of representative rounds.
    let f8 = fig8::run(&fig8::Config::default());
    println!("{f8}");
    let f10 = fig10::run(&fig10::Config::default());
    println!("{f10}");

    println!(
        "The 6 µs page fault on v1's first unlink — plus its 11 µs of checking —\n\
         is longer than the victim's 3 µs rename→chmod gap, so v1 always loses;\n\
         v2 touches the unlink/symlink page every iteration and wins the race\n\
         when its (contention-inflated) stat lands early inside the rename."
    );
}
