//! The defender's view: sensitivity analysis plus the EDGI counterfactual.
//!
//! ```text
//! cargo run --release --example defense_demo
//! ```
//!
//! 1. Use the model's sensitivity helpers to see what a defender buys by
//!    shrinking the window or slowing the attacker.
//! 2. Re-run the paper's attacks with the simulated kernel's EDGI-style
//!    invariant guard enabled.

use tocttou::core::model::sensitivity::{gradient, safe_laxity, success_curve};
use tocttou::core::model::MeasuredUs;
use tocttou::core::stats::SuccessCounter;
use tocttou::os::defense::DefensePolicy;
use tocttou::workloads::Scenario;

fn main() {
    println!("== the defender's levers (formula (1) sensitivity) ==\n");
    let d = MeasuredUs::new(32.7, 2.83); // Table 2's attacker
    let g = gradient(11.6, d.mean);
    println!(
        "at gedit's regime (L = 11.6 µs, D = 32.7 µs):\n\
         every µs of extra window costs {:.1} points of success;\n\
         every µs of attacker slowdown buys back {:.1} points",
        g.dp_dl * 100.0,
        -g.dp_dd * 100.0
    );
    println!(
        "to keep this attacker below 5%, the window may leave {:.1} µs of laxity\n",
        safe_laxity(d.mean, 0.05)
    );

    println!("success curve over L (D = 32.7 ± 2.83 µs, 4 µs measurement noise):");
    println!("{:>8} {:>12} {:>12}", "L µs", "formula(1)", "stochastic");
    for p in success_curve(-10.0, 60.0, 8, d, 4.0) {
        println!(
            "{:>8.1} {:>11.1}% {:>11.1}%",
            p.l_us,
            p.point * 100.0,
            p.expected * 100.0
        );
    }

    println!("\n== the EDGI counterfactual (simulated kernel guard) ==\n");
    let rounds = 60u64;
    for base in [
        Scenario::vi_smp(100 * 1024),
        Scenario::gedit_smp(2048),
        Scenario::gedit_multicore_v2(2048),
    ] {
        let mut off = SuccessCounter::new();
        let mut on = SuccessCounter::new();
        let guarded = base.clone().with_defense(DefensePolicy::Edgi);
        for i in 0..rounds {
            off.record(base.run_round(7_000 + i).success);
            on.record(guarded.run_round(7_000 + i).success);
        }
        println!(
            "{:<28} undefended {:>6.1}%   with EDGI {:>6.1}%",
            base.name,
            off.rate() * 100.0,
            on.rate() * 100.0
        );
    }
    println!(
        "\nGuarding the check→use invariant removes the race entirely: the\n\
         victim's chown is denied (EACCES) instead of following the planted\n\
         symlink, and benign saves are never denied."
    );
}
